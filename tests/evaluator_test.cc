#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(EvaluatorTest, CreateValidates) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  EXPECT_TRUE(Evaluator::Create(&mu, &fig2).ok());
  EXPECT_FALSE(Evaluator::Create(nullptr, &fig2).ok());
  EXPECT_FALSE(Evaluator::Create(&mu, nullptr).ok());

  Rng rng(3);
  markov::MarkovSequence other = workload::RandomMarkovSequence(2, 3, 2, rng);
  EXPECT_FALSE(Evaluator::Create(&other, &fig2).ok());
}

TEST(EvaluatorTest, TopKWithConfidences) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto eval = Evaluator::Create(&mu, &fig2);
  ASSERT_TRUE(eval.ok());
  auto topk = eval->TopK(3);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->size(), 3u);
  auto truth = testing::BruteForceAnswers(mu, fig2);
  for (const AnswerInfo& info : *topk) {
    EXPECT_NEAR(info.confidence, truth.at(info.output), 1e-9);
    EXPECT_NEAR(info.emax, testing::BruteForceEmax(mu, fig2, info.output),
                1e-9);
  }
  EXPECT_GE((*topk)[0].emax, (*topk)[1].emax);
  EXPECT_GE((*topk)[1].emax, (*topk)[2].emax);
}

TEST(EvaluatorTest, TwoStepMatchesBruteForce) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto eval = Evaluator::Create(&mu, &fig2);
  ASSERT_TRUE(eval.ok());
  auto result = eval->EvaluateTwoStep();
  ASSERT_TRUE(result.ok());
  auto truth = testing::BruteForceAnswers(mu, fig2);
  ASSERT_EQ(result->size(), truth.size());
  for (const AnswerInfo& info : *result) {
    EXPECT_NEAR(info.confidence, truth.at(info.output), 1e-9);
  }
}

TEST(EvaluatorTest, SingleAnswerQueries) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto eval = Evaluator::Create(&mu, &fig2);
  ASSERT_TRUE(eval.ok());
  Str twelve = *ParseStr(fig2.output_alphabet(), "1 2");
  auto conf = eval->Confidence(twelve);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.5802, 1e-12);
  auto emax = eval->Emax(twelve);
  ASSERT_TRUE(emax.has_value());
  EXPECT_NEAR(*emax, 0.3969, 1e-12);
  EXPECT_FALSE(
      eval->Emax(*ParseStr(fig2.output_alphabet(), "λ")).has_value());
}

TEST(EvaluatorTest, TopKWithoutConfidenceSkipsComputation) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto eval = Evaluator::Create(&mu, &fig2);
  ASSERT_TRUE(eval.ok());
  auto topk = eval->TopK(2, /*with_confidence=*/false);
  ASSERT_TRUE(topk.ok());
  for (const AnswerInfo& info : *topk) {
    EXPECT_EQ(info.confidence, 0.0);
    EXPECT_GT(info.emax, 0.0);
  }
}

}  // namespace
}  // namespace tms::query
