#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "hmm/hmm.h"
#include "hmm/translate.h"
#include "markov/world_iter.h"

namespace tms::hmm {
namespace {

// A small weather HMM: hidden {sunny, rainy}, observed {walk, shop, clean}.
Hmm Weather() {
  Alphabet states = *Alphabet::FromNames({"sunny", "rainy"});
  Alphabet obs = *Alphabet::FromNames({"walk", "shop", "clean"});
  auto h = Hmm::Create(states, obs, {0.6, 0.4},
                       {0.7, 0.3,  //
                        0.4, 0.6},
                       {0.6, 0.3, 0.1,  //
                        0.1, 0.4, 0.5});
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

// Brute-force joint Pr(X = x, O = o) under the HMM.
double JointProb(const Hmm& h, const Str& hidden, const Str& obs) {
  double p = h.Initial(hidden[0]) * h.Emission(hidden[0], obs[0]);
  for (size_t t = 1; t < hidden.size(); ++t) {
    p *= h.Transition(hidden[t - 1], hidden[t]) *
         h.Emission(hidden[t], obs[t]);
  }
  return p;
}

// All hidden trajectories of length n.
void ForEachTrajectory(int num_states, int n,
                       const std::function<void(const Str&)>& fn) {
  Str cur(static_cast<size_t>(n), 0);
  std::function<void(int)> rec = [&](int i) {
    if (i == n) {
      fn(cur);
      return;
    }
    for (int s = 0; s < num_states; ++s) {
      cur[static_cast<size_t>(i)] = static_cast<Symbol>(s);
      rec(i + 1);
    }
  };
  rec(0);
}

TEST(HmmTest, CreateValidatesRows) {
  Alphabet st = *Alphabet::FromNames({"a"});
  Alphabet ob = *Alphabet::FromNames({"x"});
  EXPECT_TRUE(Hmm::Create(st, ob, {1.0}, {1.0}, {1.0}).ok());
  EXPECT_FALSE(Hmm::Create(st, ob, {0.9}, {1.0}, {1.0}).ok());
  EXPECT_FALSE(Hmm::Create(st, ob, {1.0}, {0.5}, {1.0}).ok());
  EXPECT_FALSE(Hmm::Create(st, ob, {1.0}, {1.0}, {2.0, -1.0}).ok());
}

TEST(HmmTest, SampleHasRightShape) {
  Hmm h = Weather();
  Rng rng(5);
  auto [hidden, obs] = h.Sample(10, rng);
  EXPECT_EQ(hidden.size(), 10u);
  EXPECT_EQ(obs.size(), 10u);
}

TEST(TranslateTest, LikelihoodMatchesBruteForce) {
  Hmm h = Weather();
  Str obs = {0, 2, 1, 0};  // walk clean shop walk
  double expected = 0;
  ForEachTrajectory(2, static_cast<int>(obs.size()), [&](const Str& x) {
    expected += JointProb(h, x, obs);
  });
  EXPECT_NEAR(std::exp(ObservationLogLikelihood(h, obs)), expected, 1e-12);
}

TEST(TranslateTest, PosteriorMarkovSequenceMatchesBayesRule) {
  // The posterior Markov sequence must assign every hidden trajectory x
  // the probability Pr(X = x | O = o) — the definitional check of the
  // paper's HMM→Markov-sequence translation.
  Hmm h = Weather();
  Str obs = {0, 2, 1, 0};
  auto mu = PosteriorMarkovSequence(h, obs);
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_EQ(mu->length(), 4);

  double likelihood = std::exp(ObservationLogLikelihood(h, obs));
  ForEachTrajectory(2, 4, [&](const Str& x) {
    double posterior = JointProb(h, x, obs) / likelihood;
    EXPECT_NEAR(mu->WorldProbability(x), posterior, 1e-9)
        << FormatStr(h.states(), x);
  });
}

TEST(TranslateTest, PosteriorIsProperDistribution) {
  Hmm h = Weather();
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    auto [hidden, obs] = h.Sample(6, rng);
    auto mu = PosteriorMarkovSequence(h, obs);
    ASSERT_TRUE(mu.ok());
    double total = 0;
    markov::ForEachWorld(*mu, [&](const Str&, double p) { total += p; });
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TranslateTest, ImpossibleObservationFails) {
  // An observation with zero emission probability everywhere.
  Alphabet st = *Alphabet::FromNames({"a", "b"});
  Alphabet ob = *Alphabet::FromNames({"x", "y"});
  auto h = Hmm::Create(st, ob, {0.5, 0.5},
                       {0.5, 0.5, 0.5, 0.5},
                       {1.0, 0.0,  // both states always emit x
                        1.0, 0.0});
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(PosteriorMarkovSequence(*h, {1}).ok());  // "y" impossible
  EXPECT_TRUE(std::isinf(ObservationLogLikelihood(*h, {1})));
  EXPECT_FALSE(PosteriorMarkovSequence(*h, {}).ok());  // empty
}

TEST(TranslateTest, DeterministicEmissionGivesPointPosterior) {
  // With identity emissions the posterior must concentrate on the
  // observed trajectory itself.
  Alphabet st = *Alphabet::FromNames({"a", "b"});
  Alphabet ob = *Alphabet::FromNames({"a", "b"});
  auto h = Hmm::Create(st, ob, {0.5, 0.5},
                       {0.5, 0.5, 0.5, 0.5},
                       {1.0, 0.0, 0.0, 1.0});
  ASSERT_TRUE(h.ok());
  Str obs = {0, 1, 1, 0};
  auto mu = PosteriorMarkovSequence(*h, obs);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(mu->WorldProbability(obs), 1.0, 1e-9);
}

}  // namespace
}  // namespace tms::hmm
