// Determinism and safety of the parallel enumeration paths: byte-identical
// output at every thread count, the composition cache's differential
// correctness and LRU accounting, the finite-score boundary of the Lawler
// engine, and the shared-state ownership rules of query/emax_enum.h.
//
// These tests carry the ctest label `concurrency`; run them under
// ThreadSanitizer with -DTMS_SANITIZE=thread and `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "exec/thread_pool.h"
#include "projector/imax_enum.h"
#include "projector/sprojector.h"
#include "query/emax_enum.h"
#include "ranking/lawler.h"
#include "ranking/prefix_constraint.h"
#include "transducer/compose.h"
#include "transducer/composition_cache.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

namespace tms {
namespace {

using query::EmaxEnumerator;
using ranking::OutputConstraint;
using ranking::ScoredAnswer;
using transducer::CompositionCache;
using transducer::Transducer;

// ---------------------------------------------------------------------------
// Byte-identical parallel enumeration.

markov::MarkovSequence RandomMu(Rng& rng, int n = 6) {
  return workload::RandomMarkovSequence(3, n, 2, rng);
}

Transducer RandomT(const Alphabet& nodes, Rng& rng) {
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.max_emission = 2;
  opts.output_symbols = 2;
  opts.deterministic = rng.Bernoulli(0.5);
  return workload::RandomTransducer(nodes, opts, rng);
}

std::vector<ScoredAnswer> DrainEmax(const markov::MarkovSequence& mu,
                                    const Transducer& t,
                                    exec::ThreadPool* pool, int limit = 200) {
  EmaxEnumerator it(mu, t, EmaxEnumerator::Options{pool, nullptr});
  std::vector<ScoredAnswer> out;
  while (static_cast<int>(out.size()) < limit) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

// Exact comparison — same outputs, same score *bits* — so any
// nondeterministic merge or racy float path fails loudly.
void ExpectIdenticalStreams(const std::vector<ScoredAnswer>& a,
                            const std::vector<ScoredAnswer>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].output, b[i].output) << label << " rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << label << " rank " << i;
  }
}

TEST(ParallelEmaxTest, ByteIdenticalAtEveryThreadCount) {
  Rng rng(2026);
  exec::ThreadPool pool2(1);  // --threads=2
  exec::ThreadPool pool8(7);  // --threads=8
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = RandomMu(rng);
    Transducer t = RandomT(mu.nodes(), rng);
    std::vector<ScoredAnswer> seq = DrainEmax(mu, t, nullptr);
    ExpectIdenticalStreams(seq, DrainEmax(mu, t, &pool2),
                           "threads=2 trial " + std::to_string(trial));
    ExpectIdenticalStreams(seq, DrainEmax(mu, t, &pool8),
                           "threads=8 trial " + std::to_string(trial));
  }
}

TEST(ParallelEmaxTest, SharedCacheAcrossEnumerationsStaysIdentical) {
  Rng rng(7);
  markov::MarkovSequence mu = RandomMu(rng);
  Transducer t = RandomT(mu.nodes(), rng);
  std::vector<ScoredAnswer> fresh = DrainEmax(mu, t, nullptr);

  CompositionCache cache(&t);
  exec::ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EmaxEnumerator it(mu, t, EmaxEnumerator::Options{&pool, &cache});
    std::vector<ScoredAnswer> got;
    while (auto answer = it.Next()) got.push_back(std::move(*answer));
    ExpectIdenticalStreams(fresh, got, "round " + std::to_string(round));
  }
  // Later rounds replay compositions the first round built.
  EXPECT_GT(cache.stats().hits, 0);
}

TEST(ParallelImaxTest, ByteIdenticalAtEveryThreadCount) {
  Rng rng(31);
  exec::ThreadPool pool2(1);
  exec::ThreadPool pool8(7);
  for (int trial = 0; trial < 6; ++trial) {
    markov::MarkovSequence mu = RandomMu(rng, 5);
    auto p = projector::SProjector::Create(
        workload::RandomDfa(mu.nodes(), 2, rng, 0.6),
        workload::RandomDfa(mu.nodes(), 2, rng, 0.6),
        workload::RandomDfa(mu.nodes(), 2, rng, 0.6));
    ASSERT_TRUE(p.ok());
    auto drain = [&mu, &p](exec::ThreadPool* pool) {
      auto it = projector::ImaxEnumerator::Create(&mu, &*p, pool);
      EXPECT_TRUE(it.ok());
      std::vector<ScoredAnswer> out;
      while (auto answer = it->Next()) out.push_back(std::move(*answer));
      return out;
    };
    std::vector<ScoredAnswer> seq = drain(nullptr);
    ExpectIdenticalStreams(seq, drain(&pool2),
                           "imax threads=2 trial " + std::to_string(trial));
    ExpectIdenticalStreams(seq, drain(&pool8),
                           "imax threads=8 trial " + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------------
// CompositionCache: differential correctness, hit accounting, eviction.

void ExpectSameTransducer(const Transducer& want, const Transducer& got) {
  ASSERT_EQ(want.num_states(), got.num_states());
  EXPECT_EQ(want.initial(), got.initial());
  ASSERT_TRUE(want.input_alphabet() == got.input_alphabet());
  ASSERT_TRUE(want.output_alphabet() == got.output_alphabet());
  const int sigma = static_cast<int>(want.input_alphabet().size());
  for (int q = 0; q < want.num_states(); ++q) {
    EXPECT_EQ(want.IsAccepting(q), got.IsAccepting(q)) << "state " << q;
    for (Symbol s = 0; s < sigma; ++s) {
      const auto& we = want.Next(q, s);
      const auto& ge = got.Next(q, s);
      ASSERT_EQ(we.size(), ge.size()) << "q=" << q << " s=" << s;
      for (size_t e = 0; e < we.size(); ++e) {
        EXPECT_EQ(we[e].target, ge[e].target) << "q=" << q << " s=" << s;
        EXPECT_EQ(we[e].output, ge[e].output) << "q=" << q << " s=" << s;
      }
    }
  }
}

TEST(CompositionCacheTest, MatchesDirectCompositionOnLawlerConstraints) {
  Rng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    markov::MarkovSequence mu = RandomMu(rng, 5);
    Transducer t = RandomT(mu.nodes(), rng);
    CompositionCache cache(&t);

    // The constraints that actually occur: the root and every PartitionAfter
    // child of the answers the enumeration produces.
    std::vector<OutputConstraint> constraints = {OutputConstraint::All()};
    EmaxEnumerator it(mu, t);
    int answers = 0;
    while (auto answer = it.Next()) {
      if (++answers > 12) break;
      for (OutputConstraint& c :
           OutputConstraint::All().PartitionAfter(answer->output)) {
        constraints.push_back(std::move(c));
      }
    }
    for (const OutputConstraint& c : constraints) {
      auto cached = cache.Compose(c);
      ASSERT_NE(cached, nullptr);
      ExpectSameTransducer(ComposeWithOutputConstraint(t, c), *cached);
      // Second lookup returns the same object, not a rebuild.
      EXPECT_EQ(cache.Compose(c).get(), cached.get());
    }
  }
}

TEST(CompositionCacheTest, CountsHitsAndMisses) {
  Rng rng(9);
  markov::MarkovSequence mu = RandomMu(rng, 4);
  Transducer t = RandomT(mu.nodes(), rng);
  CompositionCache cache(&t);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);

  OutputConstraint c;
  c.prefix = {0};
  c.excluded_next = {1};
  cache.Compose(c);
  // Miss on the specialization and on the level-1 prefix base.
  const int64_t first_misses = cache.stats().misses;
  EXPECT_GE(first_misses, 2);
  EXPECT_GT(cache.stats().bytes, 0u);

  cache.Compose(c);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, first_misses);

  // Same prefix, different excluded set: the level-1 base is reused.
  OutputConstraint sibling = c;
  sibling.excluded_next = {0};
  cache.Compose(sibling);
  EXPECT_EQ(cache.stats().hits, 2);  // base hit
  EXPECT_EQ(cache.stats().misses, first_misses + 1);
}

TEST(CompositionCacheTest, EvictsUnderTinyBudgetAndStaysCorrect) {
  Rng rng(11);
  markov::MarkovSequence mu = RandomMu(rng, 6);
  Transducer t = RandomT(mu.nodes(), rng);
  CompositionCache cache(&t, /*max_bytes=*/1024);

  std::vector<OutputConstraint> constraints;
  for (Symbol a = 0; a < 2; ++a) {
    for (Symbol b = 0; b < 2; ++b) {
      OutputConstraint c;
      c.prefix = {a, b};
      c.excluded_next = {a};
      c.allow_equal = (a != b);
      constraints.push_back(c);
    }
  }
  // Cycle through enough distinct compositions to blow the 1 KiB budget
  // repeatedly; every result must still match the direct composition.
  for (int round = 0; round < 3; ++round) {
    for (const OutputConstraint& c : constraints) {
      auto cached = cache.Compose(c);
      ExpectSameTransducer(ComposeWithOutputConstraint(t, c), *cached);
    }
  }
  EXPECT_GT(cache.stats().evictions, 0);
  // The budget may be overshot only while a single oversized entry is
  // pinned; with several small entries it must be enforced.
  EXPECT_LE(cache.stats().bytes, size_t{64} << 10);
}

// ---------------------------------------------------------------------------
// Lawler boundary: non-finite scores must not enter the heap.

TEST(LawlerBoundaryTest, NanScoredSubspacesAreSkipped) {
  // Candidate answers: "0" with score 0.5, "1" with score NaN. The NaN
  // subspace is rejected at the boundary instead of corrupting EntryLess.
  auto solver =
      [](const OutputConstraint& c) -> std::optional<ScoredAnswer> {
    if (c.Admits({0})) return ScoredAnswer{{0}, 0.5};
    if (c.Admits({1})) {
      return ScoredAnswer{{1}, std::numeric_limits<double>::quiet_NaN()};
    }
    return std::nullopt;
  };
  ranking::LawlerEnumerator it(solver);
  auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->output, Str({0}));
  EXPECT_EQ(first->score, 0.5);
  // Every remaining subspace resolves to the NaN answer → exhausted, and
  // the enumeration terminates instead of looping or crashing.
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_FALSE(it.Next().has_value());
}

TEST(LawlerBoundaryTest, InfiniteScoresAreSkippedToo) {
  auto solver =
      [](const OutputConstraint& c) -> std::optional<ScoredAnswer> {
    if (c.Admits({0})) return ScoredAnswer{{0}, 0.25};
    if (c.Admits({1})) {
      return ScoredAnswer{{1}, std::numeric_limits<double>::infinity()};
    }
    return std::nullopt;
  };
  ranking::LawlerEnumerator it(solver);
  auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->output, Str({0}));
  EXPECT_FALSE(it.Next().has_value());
}

// ---------------------------------------------------------------------------
// Ownership: the solver state must not dangle.

TEST(OwnershipTest, OwnedInputsOutliveTheCallersOriginals) {
  Rng rng(55);
  markov::MarkovSequence mu = RandomMu(rng);
  Transducer t = RandomT(mu.nodes(), rng);
  std::vector<ScoredAnswer> want = DrainEmax(mu, t, nullptr);

  std::optional<EmaxEnumerator> it;
  {
    // Copies die at the end of this scope; the enumerator must keep its
    // own. (The old borrow-only enumerator's solver lambda captured the
    // caller's references and would read freed memory here.)
    markov::MarkovSequence mu_copy = mu;
    Transducer t_copy = t;
    it.emplace(EmaxEnumerator::WithOwnedInputs(std::move(mu_copy),
                                               std::move(t_copy)));
  }
  std::vector<ScoredAnswer> got;
  while (auto answer = it->Next()) got.push_back(std::move(*answer));
  ExpectIdenticalStreams(want, got, "owned inputs");
}

TEST(OwnershipTest, EnumeratorIsMovable) {
  Rng rng(56);
  markov::MarkovSequence mu = RandomMu(rng);
  Transducer t = RandomT(mu.nodes(), rng);
  std::vector<ScoredAnswer> want = DrainEmax(mu, t, nullptr);

  EmaxEnumerator a(mu, t);
  if (!want.empty()) {
    auto first = a.Next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->output, want[0].output);
  }
  EmaxEnumerator b = std::move(a);  // mid-stream move keeps solver state
  std::vector<ScoredAnswer> rest;
  while (auto answer = b.Next()) rest.push_back(std::move(*answer));
  ASSERT_EQ(rest.size() + (want.empty() ? 0 : 1), want.size());
  for (size_t i = 0; i < rest.size(); ++i) {
    EXPECT_EQ(rest[i].output, want[i + 1].output);
    EXPECT_EQ(rest[i].score, want[i + 1].score);
  }
}

// ---------------------------------------------------------------------------
// BatchEvaluator: identical to the sequential collection scan.

TEST(BatchEvaluatorTest, MatchesSequentialTopKPerSequence) {
  Rng rng(77);
  markov::MarkovSequence seed = RandomMu(rng, 5);
  db::SequenceCollection collection(seed.nodes());
  ASSERT_TRUE(collection.Insert("cart-a", seed).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(collection
                    .Insert("cart-" + std::to_string(i),
                            workload::RandomMarkovSequence(3, 4 + i, 2, rng))
                    .ok());
  }
  Transducer t = RandomT(collection.nodes(), rng);

  auto want = collection.TopKPerSequence(t, 3);
  ASSERT_TRUE(want.ok());

  for (int threads : {1, 2, 8}) {
    db::BatchEvaluator::Options options;
    options.threads = threads;
    auto batch = db::BatchEvaluator::Create(&collection, &t, options);
    ASSERT_TRUE(batch.ok());
    auto got = batch->TopKPerSequence(3);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_EQ(got->size(), want->size()) << "threads=" << threads;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].key, (*want)[i].key) << "threads=" << threads;
      EXPECT_EQ((*got)[i].answer.output, (*want)[i].answer.output);
      EXPECT_EQ((*got)[i].answer.emax, (*want)[i].answer.emax);
      EXPECT_EQ((*got)[i].answer.confidence, (*want)[i].answer.confidence);
    }
    if (threads > 1) {
      // The shared cache pays off across sequences: after the first
      // sequence warms it, later ones hit.
      EXPECT_GT(batch->cache_stats().hits, 0);
    }
  }
}

TEST(BatchEvaluatorTest, RejectsAlphabetMismatch) {
  Rng rng(78);
  markov::MarkovSequence mu = RandomMu(rng, 4);
  db::SequenceCollection collection(mu.nodes());
  ASSERT_TRUE(collection.Insert("only", mu).ok());
  markov::MarkovSequence foreign = workload::RandomMarkovSequence(4, 3, 2, rng);
  Transducer t = RandomT(foreign.nodes(), rng);
  if (!(t.input_alphabet() == collection.nodes())) {
    EXPECT_FALSE(db::BatchEvaluator::Create(&collection, &t).ok());
  }
  EXPECT_FALSE(db::BatchEvaluator::Create(nullptr, &t).ok());
  EXPECT_FALSE(db::BatchEvaluator::Create(&collection, nullptr).ok());
}

}  // namespace
}  // namespace tms
