#include <gtest/gtest.h>

#include <unordered_set>

#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms {
namespace {

TEST(AlphabetTest, InternAssignsDenseIdsInOrder) {
  Alphabet a;
  EXPECT_EQ(a.Intern("x"), 0);
  EXPECT_EQ(a.Intern("y"), 1);
  EXPECT_EQ(a.Intern("x"), 0);  // idempotent
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.Name(0), "x");
  EXPECT_EQ(a.Name(1), "y");
}

TEST(AlphabetTest, FindAndContains) {
  Alphabet a;
  a.Intern("alpha");
  EXPECT_TRUE(a.Contains("alpha"));
  EXPECT_FALSE(a.Contains("beta"));
  EXPECT_EQ(*a.Find("alpha"), 0);
  EXPECT_FALSE(a.Find("beta").ok());
}

TEST(AlphabetTest, FromNamesRejectsDuplicates) {
  EXPECT_TRUE(Alphabet::FromNames({"a", "b", "c"}).ok());
  EXPECT_FALSE(Alphabet::FromNames({"a", "b", "a"}).ok());
}

TEST(AlphabetTest, Equality) {
  auto a = *Alphabet::FromNames({"a", "b"});
  auto b = *Alphabet::FromNames({"a", "b"});
  auto c = *Alphabet::FromNames({"b", "a"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // order matters (ids differ)
}

TEST(AlphabetTest, IsValid) {
  auto a = *Alphabet::FromNames({"a", "b"});
  EXPECT_TRUE(a.IsValid(0));
  EXPECT_TRUE(a.IsValid(1));
  EXPECT_FALSE(a.IsValid(2));
  EXPECT_FALSE(a.IsValid(-1));
}

TEST(StrTest, FormatStr) {
  auto a = *Alphabet::FromNames({"r1a", "la"});
  EXPECT_EQ(FormatStr(a, {0, 1, 0}), "r1a la r1a");
  EXPECT_EQ(FormatStr(a, {}), "ε");
}

TEST(StrTest, FormatStrCompact) {
  auto a = *Alphabet::FromNames({"1", "2"});
  EXPECT_EQ(FormatStrCompact(a, {0, 1}), "12");
  EXPECT_EQ(FormatStrCompact(a, {}), "ε");
}

TEST(StrTest, ParseStr) {
  auto a = *Alphabet::FromNames({"r1a", "la"});
  auto s = ParseStr(a, "r1a la  la");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, (Str{0, 1, 1}));
  EXPECT_TRUE(ParseStr(a, "")->empty());
  EXPECT_FALSE(ParseStr(a, "r1a bogus").ok());
}

TEST(StrTest, IsPrefixOf) {
  EXPECT_TRUE(IsPrefixOf({}, {1, 2}));
  EXPECT_TRUE(IsPrefixOf({1}, {1, 2}));
  EXPECT_TRUE(IsPrefixOf({1, 2}, {1, 2}));
  EXPECT_FALSE(IsPrefixOf({2}, {1, 2}));
  EXPECT_FALSE(IsPrefixOf({1, 2, 3}, {1, 2}));
}

TEST(StrTest, Concat) {
  EXPECT_EQ(Concat({1, 2}, {3}), (Str{1, 2, 3}));
  EXPECT_EQ(Concat({}, {}), Str{});
}

TEST(StrTest, HashUsableInUnorderedSet) {
  std::unordered_set<Str, StrHash> set;
  set.insert(Str{1, 2, 3});
  set.insert(Str{1, 2, 3});
  set.insert(Str{3, 2, 1});
  set.insert(Str{});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Str{1, 2, 3}));
  EXPECT_TRUE(set.count(Str{}));
}

}  // namespace
}  // namespace tms
