// Tests for the truncation flight recorder (obs/flight_recorder.h): ring
// recording and wrap-around, concurrent record/snapshot safety, dump
// triggering from exec::RunContext hard stops (budget / deadline /
// cancel / fault — never an answer cap), per-query dump deduplication,
// and the sink modes. `ctest -L obs` runs these.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exec/run_context.h"
#include "obs/obs.h"

#if TMS_OBS_ACTIVE

namespace tms {
namespace {

using obs::FlightRecorder;
using obs::TraceEvent;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    FlightRecorder::Global().Clear();
    FlightRecorder::Global().SetDumpSink(FlightRecorder::Sink::kMemory);
  }
  void TearDown() override {
    FlightRecorder::Global().Clear();
    FlightRecorder::Global().SetDumpSink(FlightRecorder::Sink::kMemory);
  }

  static TraceEvent Event(const char* name, uint64_t span, uint64_t parent,
                          uint64_t query) {
    TraceEvent e;
    e.name = name;
    e.span_id = span;
    e.parent_id = parent;
    e.query_id = query;
    e.start_ns = 1000;
    e.duration_ns = 10;
    return e;
  }
};

TEST_F(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder& r = FlightRecorder::Global();
  r.Record(Event("flight.a", 1, 0, 7));
  r.Record(Event("flight.b", 2, 1, 7));
  std::vector<TraceEvent> spans = r.SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "flight.a");
  EXPECT_STREQ(spans[1].name, "flight.b");
  EXPECT_EQ(spans[1].parent_id, 1u);
  EXPECT_EQ(spans[1].query_id, 7u);
  EXPECT_EQ(r.dropped(), 0);
}

TEST_F(FlightRecorderTest, RingWrapsAndReportsDropped) {
  FlightRecorder& r = FlightRecorder::Global();
  const size_t total = FlightRecorder::kCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    r.Record(Event("flight.wrap", i + 1, 0, 1));
  }
  std::vector<TraceEvent> spans = r.SnapshotSpans();
  EXPECT_LE(spans.size(), FlightRecorder::kCapacity);
  EXPECT_EQ(r.dropped(), 10);
  // The survivors are the most recent records.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().span_id, total);
}

TEST_F(FlightRecorderTest, ConcurrentRecordAndSnapshotIsSafe) {
  // Hammer the ring from several writers while a reader snapshots; the
  // per-slot sequence stamp must make every returned event internally
  // consistent (a name is never null/torn). Run under
  // -DTMS_SANITIZE=thread for the memory-model proof.
  FlightRecorder& r = FlightRecorder::Global();
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&r, w] {
      for (int i = 0; i < 5000; ++i) {
        r.Record(Event("flight.stress", static_cast<uint64_t>(w) * 10000 + i,
                       0, static_cast<uint64_t>(w)));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const TraceEvent& e : r.SnapshotSpans()) {
      ASSERT_NE(e.name, nullptr);
      EXPECT_STREQ(e.name, "flight.stress");
    }
  }
  for (std::thread& t : writers) t.join();
}

TEST_F(FlightRecorderTest, DumpJsonCarriesSpansAndQueries) {
  FlightRecorder& r = FlightRecorder::Global();
  r.Record(Event("flight.dumped", 3, 1, 9));
  obs::QueryEndEvent end;
  end.query_id = 9;
  end.name = "topk";
  end.duration_ns = 1234;
  end.counters.emplace_back("ranking.lawler.pops", 5);
  r.RecordQueryEnd(std::move(end));
  std::string doc = r.DumpJson("BUDGET_EXHAUSTED", 9, "detail-string");
  EXPECT_NE(doc.find("\"tms_flight_dump\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"BUDGET_EXHAUSTED\""), std::string::npos);
  EXPECT_NE(doc.find("\"query_id\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"detail\":\"detail-string\""), std::string::npos);
  EXPECT_NE(doc.find("flight.dumped"), std::string::npos);
  EXPECT_NE(doc.find("\"ranking.lawler.pops\":5"), std::string::npos);
}

TEST_F(FlightRecorderTest, OnTruncationDumpsOncePerQuery) {
  FlightRecorder& r = FlightRecorder::Global();
  EXPECT_EQ(r.dump_count(), 0);
  r.OnTruncation("DEADLINE_EXCEEDED", 42, "");
  EXPECT_EQ(r.dump_count(), 1);
  EXPECT_NE(r.LastDump().find("DEADLINE_EXCEEDED"), std::string::npos);
  // Same query id again (a batch whose shared deadline latches every
  // child stream): deduplicated.
  r.OnTruncation("DEADLINE_EXCEEDED", 42, "");
  EXPECT_EQ(r.dump_count(), 1);
  // A different query dumps.
  r.OnTruncation("CANCELLED", 43, "");
  EXPECT_EQ(r.dump_count(), 2);
  // Query id 0 (no scope) is never deduplicated.
  r.OnTruncation("BUDGET_EXHAUSTED", 0, "");
  r.OnTruncation("BUDGET_EXHAUSTED", 0, "");
  EXPECT_EQ(r.dump_count(), 4);
}

TEST_F(FlightRecorderTest, SinkNoneSkipsDump) {
  FlightRecorder& r = FlightRecorder::Global();
  r.SetDumpSink(FlightRecorder::Sink::kNone);
  r.OnTruncation("CANCELLED", 7, "");
  EXPECT_EQ(r.dump_count(), 0);
  EXPECT_EQ(r.LastDump(), "");
}

TEST_F(FlightRecorderTest, SinkFileAppendsDump) {
  std::string path =
      ::testing::TempDir() + "/tms_flight_recorder_test_dump.json";
  std::remove(path.c_str());
  FlightRecorder& r = FlightRecorder::Global();
  r.SetDumpSink(FlightRecorder::Sink::kFile, path);
  r.OnTruncation("FAULT", 11, "exec.fault.test_point");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  std::string doc(buf, n);
  EXPECT_NE(doc.find("\"reason\":\"FAULT\""), std::string::npos);
  EXPECT_NE(doc.find("exec.fault.test_point"), std::string::npos);
}

// ---------------------------------------------------------------------------
// exec::RunContext integration: which stop reasons dump.

TEST_F(FlightRecorderTest, BudgetExhaustionTriggersDump) {
  FlightRecorder& r = FlightRecorder::Global();
  exec::RunContext run;
  run.set_work_budget(1);
  EXPECT_TRUE(run.ChargeWork());   // spends the budget
  EXPECT_FALSE(run.ChargeWork());  // latches kBudget
  EXPECT_EQ(r.dump_count(), 1);
  EXPECT_NE(r.LastDump().find("BUDGET_EXHAUSTED"), std::string::npos);
}

TEST_F(FlightRecorderTest, CancellationTriggersDump) {
  FlightRecorder& r = FlightRecorder::Global();
  exec::RunContext run;
  run.RequestCancel();
  EXPECT_TRUE(run.StopRequested());  // latches kCancelled
  EXPECT_EQ(r.dump_count(), 1);
  EXPECT_NE(r.LastDump().find("CANCELLED"), std::string::npos);
}

TEST_F(FlightRecorderTest, AnswerCapDoesNotDump) {
  // An answer cap is a client-requested stop, not a failure — the
  // recorder must stay quiet.
  FlightRecorder& r = FlightRecorder::Global();
  exec::RunContext run;
  run.set_max_answers(1);
  EXPECT_TRUE(run.BeforeAnswer());
  run.CountAnswer();
  EXPECT_FALSE(run.BeforeAnswer());  // latches kAnswerCap
  EXPECT_EQ(run.stop_reason(), exec::StopReason::kAnswerCap);
  EXPECT_EQ(r.dump_count(), 0);
}

}  // namespace
}  // namespace tms

#endif  // TMS_OBS_ACTIVE
