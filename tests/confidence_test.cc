#include "query/confidence.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/confidence_exact.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

struct SweepParam {
  int sigma;
  int n;
  int states;
  bool deterministic;
  int uniform_k;  // -1 = non-uniform
};

class ConfidenceSweep : public ::testing::TestWithParam<SweepParam> {};

// Theorem 4.6 / 4.8 algorithms and the exact DP all agree with the
// possible-world brute force on randomized instances of their classes.
TEST_P(ConfidenceSweep, MatchesBruteForce) {
  const SweepParam param = GetParam();
  Rng rng(static_cast<uint64_t>(param.sigma * 1000 + param.n * 100 +
                                param.states * 10 + param.uniform_k + 5));
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu =
        workload::RandomMarkovSequence(param.sigma, param.n, param.sigma, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = param.states;
    opts.deterministic = param.deterministic;
    opts.uniform_k = param.uniform_k;
    opts.max_emission = 2;
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);
    for (const auto& [o, expected] : truth) {
      // Dispatching facade.
      auto conf = Confidence(mu, t, o);
      ASSERT_TRUE(conf.ok()) << conf.status();
      EXPECT_NEAR(*conf, expected, 1e-9);
      // Exact exponential algorithm applies everywhere.
      auto exact = ConfidenceExact(mu, t, o);
      ASSERT_TRUE(exact.ok());
      EXPECT_NEAR(*exact, expected, 1e-9);
      // Class-specific algorithms.
      if (param.deterministic) {
        auto det = ConfidenceDeterministic(mu, t, o);
        ASSERT_TRUE(det.ok());
        EXPECT_NEAR(*det, expected, 1e-9);
      }
      if (param.uniform_k >= 0) {
        auto sub = ConfidenceUniformSubset(mu, t, o);
        ASSERT_TRUE(sub.ok());
        EXPECT_NEAR(*sub, expected, 1e-9);
      }
      if (param.deterministic && param.uniform_k >= 0) {
        auto fast = ConfidenceDeterministicUniform(mu, t, o);
        ASSERT_TRUE(fast.ok());
        EXPECT_NEAR(*fast, expected, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, ConfidenceSweep,
    ::testing::Values(
        SweepParam{2, 4, 2, true, -1},   // deterministic, non-uniform
        SweepParam{2, 4, 3, true, 1},    // deterministic Mealy-like
        SweepParam{2, 5, 2, true, 0},    // deterministic, 0-uniform
        SweepParam{3, 3, 2, true, 2},    // deterministic, 2-uniform
        SweepParam{2, 4, 3, false, 1},   // nondeterministic, 1-uniform
        SweepParam{2, 4, 2, false, 2},   // nondeterministic, 2-uniform
        SweepParam{2, 4, 3, false, -1},  // general (exact algorithm only)
        SweepParam{3, 4, 2, false, -1}));

TEST(ConfidenceTest, NonAnswersHaveZeroConfidence) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  auto conf = Confidence(mu, fig2, *ParseStr(out, "λ λ"));
  ASSERT_TRUE(conf.ok());
  EXPECT_DOUBLE_EQ(*conf, 0.0);
}

TEST(ConfidenceTest, PreconditionsEnforced) {
  Rng rng(3);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = false;
  opts.density = 2.0;
  transducer::Transducer nd =
      workload::RandomTransducer(mu.nodes(), opts, rng);
  if (!nd.IsDeterministic()) {
    EXPECT_FALSE(ConfidenceDeterministic(mu, nd, {}).ok());
  }
  // Alphabet mismatch.
  markov::MarkovSequence other = workload::RandomMarkovSequence(3, 3, 3, rng);
  EXPECT_FALSE(Confidence(other, nd, {}).ok());
}

TEST(ConfidenceTest, UniformSubsetRejectsNonUniform) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  EXPECT_FALSE(ConfidenceUniformSubset(mu, fig2, {}).ok());
}

TEST(ConfidenceTest, UniformSubsetLengthMismatchIsZero) {
  Rng rng(9);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.uniform_k = 1;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto conf = ConfidenceUniformSubset(mu, t, {0});  // |o| = 1 ≠ n = 3
  ASSERT_TRUE(conf.ok());
  EXPECT_DOUBLE_EQ(*conf, 0.0);
}

TEST(ConfidenceTest, ExactRationalMatchesDoubleOnRunningExample) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  Str twelve = *ParseStr(out, "1 2");
  auto exact = ConfidenceDeterministicExact(mu, fig2, twelve);
  ASSERT_TRUE(exact.ok());
  auto approx = ConfidenceDeterministic(mu, fig2, twelve);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(exact->ToDouble(), *approx, 1e-12);
  // The reconstruction's exact value: 0.4038 (s+t+u) plus the forced
  // fourth world r1b r1b la r1a r2a (0.1764) — see running_example.h.
  EXPECT_EQ(*exact, numeric::Rational(5802, 10000));
}

TEST(ConfidenceTest, ExactStatsReportLayerWidth) {
  Rng rng(13);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto answers = testing::BruteForceAnswers(mu, t);
  if (answers.empty()) GTEST_SKIP();
  ExactConfidenceStats stats;
  auto conf = ConfidenceExact(mu, t, answers.begin()->first, &stats);
  ASSERT_TRUE(conf.ok());
  EXPECT_GT(stats.max_layer_width, 0);
  EXPECT_GE(stats.total_entries, stats.max_layer_width);
  // The width guard triggers when set below the observed width.
  auto guarded = ConfidenceExact(mu, t, answers.begin()->first, nullptr,
                                 /*max_layer_width=*/0);
  EXPECT_TRUE(guarded.ok());
  if (stats.max_layer_width > 1) {
    auto blocked = ConfidenceExact(mu, t, answers.begin()->first, nullptr,
                                   stats.max_layer_width - 1);
    EXPECT_FALSE(blocked.ok());
  }
}

TEST(ConfidenceTest, ZeroUniformNondeterministicAcceptance) {
  // 0-uniform nondeterministic transducer: conf(ε) = Pr(S ∈ L(A)) via the
  // subset algorithm; cross-checked against the acceptance brute force.
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.deterministic = false;
    opts.density = 1.5;
    opts.uniform_k = 0;
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto conf = ConfidenceUniformSubset(mu, t, {});
    ASSERT_TRUE(conf.ok());
    double expected = testing::BruteForceConfidence(mu, t, {});
    EXPECT_NEAR(*conf, expected, 1e-9);
    // Nonempty outputs are impossible under 0-uniform emission.
    auto nonempty = ConfidenceUniformSubset(mu, t, {0});
    ASSERT_TRUE(nonempty.ok());
    EXPECT_DOUBLE_EQ(*nonempty, 0.0);
  }
}

TEST(ConfidenceTest, ExactRationalRequiresExactSequence) {
  Rng rng(3);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  workload::RandomTransducerOptions opts;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  EXPECT_FALSE(mu.has_exact());
  EXPECT_FALSE(ConfidenceExactRational(mu, t, {}).ok());
}

}  // namespace
}  // namespace tms::query
