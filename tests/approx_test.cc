// Monte-Carlo confidence estimation (the paper's "approximating the
// confidence of an answer" future-work direction) and the TopKWorlds
// utility.

#include "query/approx.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "markov/world_iter.h"
#include "query/confidence.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(MonteCarloTest, ConvergesToExactConfidence) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  Str twelve = *ParseStr(fig2.output_alphabet(), "1 2");
  Rng rng(301);
  auto estimate = ConfidenceMonteCarlo(mu, fig2, twelve, 40000, rng);
  EXPECT_EQ(estimate.samples, 40000);
  EXPECT_EQ(estimate.hits,
            static_cast<int64_t>(estimate.estimate * 40000 + 0.5));
  // Exact value 0.5802; 40k samples give ±0.0068 at 95%.
  EXPECT_NEAR(estimate.estimate, 0.5802, 3 * estimate.error_bound95);
  EXPECT_LT(estimate.error_bound95, 0.01);
}

TEST(MonteCarloTest, ZeroForNonAnswers) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  Rng rng(303);
  auto estimate = ConfidenceMonteCarlo(
      mu, fig2, *ParseStr(fig2.output_alphabet(), "λ λ"), 2000, rng);
  EXPECT_EQ(estimate.hits, 0);
  EXPECT_DOUBLE_EQ(estimate.estimate, 0.0);
}

TEST(MonteCarloTest, ErrorBoundShrinksWithSamples) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  Rng rng(307);
  auto small = ConfidenceMonteCarlo(mu, fig2, {}, 100, rng);
  auto large = ConfidenceMonteCarlo(mu, fig2, {}, 10000, rng);
  EXPECT_GT(small.error_bound95, large.error_bound95);
  EXPECT_NEAR(small.error_bound95 / large.error_bound95, 10.0, 0.1);
}

TEST(MonteCarloTest, WorksOnNondeterministicTransducers) {
  Rng rng(311);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.max_emission = 2;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto answers = testing::BruteForceAnswers(mu, t);
  if (answers.empty()) GTEST_SKIP();
  // Pick the highest-confidence answer to keep the relative error small.
  auto best = std::max_element(
      answers.begin(), answers.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  auto estimate = ConfidenceMonteCarlo(mu, t, best->first, 30000, rng);
  EXPECT_NEAR(estimate.estimate, best->second,
              3 * estimate.error_bound95 + 1e-6);
}

TEST(TopKWorldsTest, MatchesBruteForceOrder) {
  Rng rng(313);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 4, 2, rng);
    std::vector<std::pair<Str, double>> expected;
    markov::ForEachWorld(mu, [&](const Str& w, double p) {
      expected.emplace_back(w, p);
    });
    std::sort(expected.begin(), expected.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    auto got = markov::TopKWorlds(mu, 5);
    ASSERT_EQ(got.size(), std::min<size_t>(5, expected.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-9);
      EXPECT_NEAR(mu.WorldProbability(got[i].first), got[i].second, 1e-9);
    }
    // The top-1 agrees with the Viterbi MostLikelyWorld.
    auto [viterbi_world, viterbi_p] = markov::MostLikelyWorld(mu);
    EXPECT_NEAR(got[0].second, viterbi_p, 1e-9);
  }
}

TEST(TopKWorldsTest, ExhaustsSupport) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  auto all = markov::TopKWorlds(mu, 1000000);
  EXPECT_EQ(all.size(),
            static_cast<size_t>(std::stoll(
                mu.CountSupportWorlds().ToString())));
  double total = 0;
  for (const auto& [w, p] : all) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Nonincreasing.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].second, all[i].second - 1e-12);
  }
  EXPECT_TRUE(markov::TopKWorlds(mu, 0).empty());
}

}  // namespace
}  // namespace tms::query
