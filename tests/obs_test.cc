// Tests for the tms::obs observability layer: counter/gauge/histogram
// semantics, registry snapshot/reset, delay recording, trace spans and
// their Chrome-trace JSON export, and the JSON / Prometheus writers.
// The compiled-out (no-op) surface is exercised by obs_noop_test.cc,
// which is built into this binary with TMS_OBS_FORCE_DISABLE.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include "obs/obs.h"

// These tests exercise the instrumented surface, which only exists when
// the build compiles it in (-DTMS_OBS=ON, the default). In a compiled-out
// build this TU contributes nothing and obs_noop_test.cc (always the
// no-op surface) carries the binary.
#if TMS_OBS_ACTIVE

namespace tms::obs {
namespace {

// Each test runs on a fresh registry state; collection is forced on so
// the tests are independent of the TMS_OBS environment variable.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Global().Reset();
    SetTracingEnabled(false);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    Tracer::Global().Clear();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter& c = Registry::Global().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, RuntimeDisableDropsMutations) {
  Counter& c = Registry::Global().counter("test.disabled.counter");
  Histogram& h = Registry::Global().histogram("test.disabled.histogram");
  SetEnabled(false);
  c.Add(7);
  h.Record(7);
  SetEnabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.Add(7);
  EXPECT_EQ(c.value(), 7);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  Gauge& g = Registry::Global().gauge("test.gauge");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  Counter& a = Registry::Global().counter("test.same");
  Counter& b = Registry::Global().counter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST_F(ObsTest, HistogramBucketGrid) {
  // Bucket 0 covers (-inf, 1]; bucket i covers (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024);
  EXPECT_EQ(Histogram::BucketUpperBound(63), INT64_MAX);
}

TEST_F(ObsTest, HistogramTracksExactEnvelope) {
  Histogram& h = Registry::Global().histogram("test.histogram");
  for (int64_t v : {3, 9, 1, 100, 9}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 122);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  EXPECT_DOUBLE_EQ(snap.Mean(), 122.0 / 5.0);
  int64_t bucket_total = 0;
  for (const auto& b : snap.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(ObsTest, HistogramQuantilesRespectEnvelope) {
  Histogram& h = Registry::Global().histogram("test.quantiles");
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.0), 1);
  EXPECT_EQ(snap.Quantile(1.0), 100);
  int64_t p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 32);   // true median 50 lives in bucket (32, 64]
  EXPECT_LE(p50, 64);
  int64_t p99 = snap.Quantile(0.99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 100);
  // Empty histograms answer 0 for every quantile.
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0);
}

TEST_F(ObsTest, RegistrySnapshotAndReset) {
  Registry::Global().counter("test.snap.counter").Add(5);
  Registry::Global().gauge("test.snap.gauge").Set(2.5);
  Registry::Global().histogram("test.snap.histogram").Record(8);
  RegistrySnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test.snap.counter"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap.gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.snap.histogram").count, 1);

  Registry::Global().Reset();
  snap = Registry::Global().Snapshot();
  // Registrations survive a reset; values are zeroed.
  EXPECT_EQ(snap.counters.at("test.snap.counter"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap.gauge"), 0.0);
  EXPECT_EQ(snap.histograms.at("test.snap.histogram").count, 0);
}

TEST_F(ObsTest, MacrosRecordIntoRegistry) {
  TMS_OBS_COUNT("test.macro.counter", 2);
  TMS_OBS_COUNT("test.macro.counter", 3);
  TMS_OBS_GAUGE_SET("test.macro.gauge", 1.25);
  TMS_OBS_HISTOGRAM("test.macro.histogram", 16);
  RegistrySnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test.macro.counter"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.macro.gauge"), 1.25);
  EXPECT_EQ(snap.histograms.at("test.macro.histogram").count, 1);
}

TEST_F(ObsTest, DelayRecorderFeedsNamedHistogram) {
  DelayRecorder delay("test.engine");
  delay.Restart();
  int64_t first = delay.RecordAnswer();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  int64_t second = delay.RecordAnswer();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, 2'000'000);  // slept >= 2ms between answers
  HistogramSnapshot snap =
      Registry::Global().histogram("test.engine.delay_ns").Snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_EQ(snap.max, std::max(first, second));
}

TEST_F(ObsTest, SpansAreFreeWhenTracingDisabled) {
  {
    Span span("test.span.disabled");
  }
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(ObsTest, NestedSpansRecordInFinishOrder) {
  SetTracingEnabled(true);
  {
    Span outer("test.span.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      Span inner("test.span.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner finishes (and is recorded) first; time ranges nest.
  EXPECT_STREQ(events[0].name, "test.span.inner");
  EXPECT_STREQ(events[1].name, "test.span.outer");
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  SetTracingEnabled(true);
  {
    Span span("test.span.json");
  }
  SetTracingEnabled(false);
  std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.span.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().ChromeTraceJson(), "{\"traceEvents\":[]}");
}

TEST_F(ObsTest, RegistryJsonShape) {
  Registry::Global().counter("test.json.counter").Add(7);
  Registry::Global().gauge("test.json.gauge").Set(0.5);
  Registry::Global().histogram("test.json.histogram").Record(3);
  std::string json = RegistryJson(Registry::Global().Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.histogram\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":"), std::string::npos);
}

TEST_F(ObsTest, JsonEscaping) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\nd", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd");
  out.clear();
  AppendJsonNumber(1.0 / 0.0, &out);  // non-finite must stay valid JSON
  EXPECT_EQ(out, "0");
}

TEST_F(ObsTest, PrometheusTextShape) {
  Registry::Global().counter("test.prom.counter").Add(9);
  Registry::Global().histogram("test.prom.histogram").Record(5);
  std::string text = PrometheusText(Registry::Global().Snapshot());
  EXPECT_NE(text.find("tms_test_prom_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tms_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("tms_test_prom_histogram_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("tms_test_prom_histogram_sum 5"), std::string::npos);
  EXPECT_NE(text.find("tms_test_prom_histogram_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus exposition edge cases.

TEST_F(ObsTest, PrometheusMetricNamePreservesDigitsAndColons) {
  // Digits are legal in Prometheus names everywhere except the first
  // character, which the "tms_" prefix guarantees — a name like
  // "cache.l2.hits" must NOT lose its "2".
  EXPECT_EQ(PrometheusMetricName("cache.l2.hits"), "tms_cache_l2_hits");
  EXPECT_EQ(PrometheusMetricName("kernels.gemm.64x64"),
            "tms_kernels_gemm_64x64");
  EXPECT_EQ(PrometheusMetricName("p99"), "tms_p99");
  EXPECT_EQ(PrometheusMetricName("a:b"), "tms_a:b");
  EXPECT_EQ(PrometheusMetricName("weird name-1!"), "tms_weird_name_1_");
}

TEST_F(ObsTest, PrometheusNumberSpellsNonFiniteSamples) {
  std::string s;
  AppendPrometheusNumber(std::numeric_limits<double>::quiet_NaN(), &s);
  EXPECT_EQ(s, "NaN");
  s.clear();
  AppendPrometheusNumber(std::numeric_limits<double>::infinity(), &s);
  EXPECT_EQ(s, "+Inf");
  s.clear();
  AppendPrometheusNumber(-std::numeric_limits<double>::infinity(), &s);
  EXPECT_EQ(s, "-Inf");
  s.clear();
  AppendPrometheusNumber(2.5, &s);
  EXPECT_EQ(s, "2.5");
}

TEST_F(ObsTest, PrometheusGaugeEmitsNonFiniteSpellings) {
  Registry::Global().gauge("test.prom.inf").Set(
      std::numeric_limits<double>::infinity());
  std::string text = PrometheusText(Registry::Global().Snapshot());
  EXPECT_NE(text.find("tms_test_prom_inf +Inf"), std::string::npos);
  // The JSON writer, by contrast, must NOT leak bare Inf (invalid JSON).
  std::string json = RegistryJson(Registry::Global().Snapshot());
  EXPECT_EQ(json.find("Inf"), std::string::npos);
}

TEST_F(ObsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(PrometheusLabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelEscape("a\nb"), "a\\nb");
}

TEST_F(ObsTest, PrometheusSaturatedBucketFoldsIntoInfLine) {
  // A sample beyond the largest finite bucket lands in the saturated
  // bucket (upper bound INT64_MAX); the exposition must fold it into the
  // single le="+Inf" line rather than emitting a bogus finite bound or a
  // second +Inf line.
  Histogram& h = Registry::Global().histogram("test.prom.saturated");
  h.Record(1);
  h.Record(std::numeric_limits<int64_t>::max());
  std::string text = PrometheusText(Registry::Global().Snapshot());
  const std::string inf_line = "tms_test_prom_saturated_bucket{le=\"+Inf\"} 2";
  size_t first = text.find(inf_line);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("tms_test_prom_saturated_bucket{le=\"+Inf\"}",
                      first + 1),
            std::string::npos);
  EXPECT_EQ(text.find("le=\"9223372036854775807\""), std::string::npos);
  EXPECT_NE(text.find("tms_test_prom_saturated_count 2"), std::string::npos);
}

}  // namespace
}  // namespace tms::obs

#endif  // TMS_OBS_ACTIVE
