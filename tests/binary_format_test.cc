// Binary model snapshots (io/binary_format.h): lossless round trips for
// every committed model plus randomized ones, adversarial rejection
// (truncation, bit flips, fingerprint mismatch, trailing bytes), and the
// `.tmsb` sibling flow LoadMarkovSequenceFile drives for tms_server
// cold starts.

#include "io/binary_format.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "io/text_format.h"
#include "markov/markov_sequence.h"
#include "obs/obs.h"
#include "test_util.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

#ifndef TMS_GOLDEN_DATA_DIR
#define TMS_GOLDEN_DATA_DIR "tests/golden/data"
#endif
#ifndef TMS_EXAMPLES_DATA_DIR
#define TMS_EXAMPLES_DATA_DIR "examples/data"
#endif

namespace tms {
namespace {

using testing::SeedTrace;
using testing::TestSeed;

// Every committed text model, by format. (Globbing would pick up the
// generated .tmsb siblings; the corpus is small enough to list.)
std::vector<std::string> MarkovFiles() {
  return {
      std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms",
      std::string(TMS_GOLDEN_DATA_DIR) + "/motif.tms",
      std::string(TMS_EXAMPLES_DATA_DIR) + "/hospital.tms",
  };
}

std::vector<std::string> TransducerFiles() {
  return {
      std::string(TMS_GOLDEN_DATA_DIR) + "/fig2_query.tms",
      std::string(TMS_GOLDEN_DATA_DIR) + "/motif_query.tms",
      std::string(TMS_EXAMPLES_DATA_DIR) + "/place_tracker.tms",
  };
}

markov::MarkovSequence ParseMarkovFile(const std::string& path) {
  auto text = io::ReadFile(path);
  EXPECT_TRUE(text.ok()) << path << ": " << text.status().ToString();
  auto mu = io::ParseMarkovSequence(*text);
  EXPECT_TRUE(mu.ok()) << path << ": " << mu.status().ToString();
  return std::move(mu).value();
}

// The round-trip contract: decode(encode(m)) reproduces the canonical
// text form byte for byte — doubles are bit images, so even the %.17g
// spellings agree.
void ExpectMarkovRoundTrip(const markov::MarkovSequence& mu,
                           const std::string& context) {
  const std::string bytes = io::EncodeMarkovSequence(mu, /*source_fp=*/42);
  ASSERT_TRUE(io::LooksBinary(bytes)) << context;
  auto decoded = io::DecodeModel(bytes);
  ASSERT_TRUE(decoded.ok()) << context << ": " << decoded.status().ToString();
  EXPECT_EQ(decoded->source_fp, 42u) << context;
  ASSERT_TRUE(decoded->markov.has_value()) << context;
  EXPECT_FALSE(decoded->transducer.has_value()) << context;
  EXPECT_EQ(io::FormatMarkovSequence(*decoded->markov),
            io::FormatMarkovSequence(mu))
      << context;
  EXPECT_EQ(decoded->markov->has_exact(), mu.has_exact()) << context;
}

TEST(BinaryFormatTest, RoundTripsEveryCommittedMarkovModel) {
  for (const std::string& path : MarkovFiles()) {
    ExpectMarkovRoundTrip(ParseMarkovFile(path), path);
  }
}

TEST(BinaryFormatTest, RoundTripsEveryCommittedTransducer) {
  for (const std::string& path : TransducerFiles()) {
    auto text = io::ReadFile(path);
    ASSERT_TRUE(text.ok()) << path;
    auto t = io::ParseTransducer(*text);
    ASSERT_TRUE(t.ok()) << path << ": " << t.status().ToString();
    const std::string bytes = io::EncodeTransducer(*t, /*source_fp=*/7);
    auto decoded = io::DecodeModel(bytes);
    ASSERT_TRUE(decoded.ok()) << path << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded->source_fp, 7u);
    ASSERT_TRUE(decoded->transducer.has_value()) << path;
    EXPECT_FALSE(decoded->markov.has_value()) << path;
    EXPECT_EQ(io::FormatTransducer(*decoded->transducer),
              io::FormatTransducer(*t))
        << path;
  }
}

TEST(BinaryFormatTest, RoundTripFuzzRandomModels) {
  const uint64_t seed = TestSeed(20260809);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    const int sigma = static_cast<int>(rng.UniformInt(2, 6));
    const int n = static_cast<int>(rng.UniformInt(2, 7));
    const int support = static_cast<int>(rng.UniformInt(1, sigma));
    markov::MarkovSequence mu =
        (round % 2 == 0)
            ? workload::RandomMarkovSequence(sigma, n, support, rng)
            : workload::RandomHomogeneousMarkovSequence(sigma, n, support,
                                                        rng);
    ExpectMarkovRoundTrip(mu, "round " + std::to_string(round));

    workload::RandomTransducerOptions opts;
    opts.num_states = static_cast<int>(rng.UniformInt(2, 5));
    transducer::Transducer t = workload::RandomTransducer(
        workload::MakeSymbols(sigma), opts, rng);
    const std::string bytes = io::EncodeTransducer(t);
    auto decoded = io::DecodeModel(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(io::FormatTransducer(*decoded->transducer),
              io::FormatTransducer(t));
  }
}

TEST(BinaryFormatTest, ExactRationalModelsSurviveTheRoundTrip) {
  // fig1 re-parsed with exact arithmetic: the snapshot must preserve the
  // rationals, not just their double shadows.
  auto text = io::ReadFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms");
  ASSERT_TRUE(text.ok());
  auto mu = io::ParseMarkovSequence(*text);
  ASSERT_TRUE(mu.ok());
  ASSERT_TRUE(mu->has_exact());
  ExpectMarkovRoundTrip(*mu, "fig1 exact");
}

TEST(BinaryFormatTest, EveryTruncationIsRejected) {
  const std::string bytes = io::EncodeMarkovSequence(
      ParseMarkovFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms"));
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = io::DecodeModel(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(BinaryFormatTest, TrailingBytesAreRejected) {
  std::string bytes = io::EncodeMarkovSequence(
      ParseMarkovFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms"));
  bytes += '\0';
  EXPECT_FALSE(io::DecodeModel(bytes).ok());
}

TEST(BinaryFormatTest, EveryBitFlipIsRejected) {
  // A flip inside the magic demotes the file to (invalid) text; a flip
  // anywhere else breaks the end-to-end fingerprint. Either way no flip
  // may ever decode — silently mangled probabilities are the one failure
  // mode a fingerprinted format exists to rule out.
  const std::string bytes = io::EncodeMarkovSequence(
      ParseMarkovFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms"));
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_FALSE(io::DecodeModel(corrupt).ok())
          << "flip at byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(BinaryFormatTest, TextInputIsNotBinary) {
  auto text = io::ReadFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms");
  ASSERT_TRUE(text.ok());
  EXPECT_FALSE(io::LooksBinary(*text));
  EXPECT_FALSE(io::DecodeModel(*text).ok());
}

TEST(BinaryFormatTest, SnapshotFedToTextParserFailsCleanly) {
  // The magic starts with '#', so the text parser sees a comment and then
  // garbage — a parse error, never a half-parsed model.
  const std::string bytes = io::EncodeMarkovSequence(
      ParseMarkovFile(std::string(TMS_GOLDEN_DATA_DIR) + "/fig1.tms"));
  EXPECT_FALSE(io::ParseMarkovSequence(bytes).ok());
}

// ---------------------------------------------------------------------------
// The sibling flow: LoadMarkovSequenceFile(path, refresh_snapshot).

class SnapshotFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "binary_format_test";
    (void)std::remove((dir_ + "/m.tms").c_str());
    (void)std::remove((dir_ + "/m.tms.tmsb").c_str());
    // TempDir always exists; our subdir may not.
    mkdir_ok_ = (mkdir(dir_.c_str(), 0755) == 0 || errno == EEXIST);
    ASSERT_TRUE(mkdir_ok_);
    path_ = dir_ + "/m.tms";
    obs::SetEnabled(true);
  }

  void WriteText(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  std::string ReadAll(const std::string& path) {
    auto text = io::ReadFile(path);
    EXPECT_TRUE(text.ok()) << path;
    return text.ok() ? *text : std::string();
  }

  bool Exists(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fclose(f);
    return true;
  }

  std::string dir_;
  std::string path_;
  bool mkdir_ok_ = false;
};

const char kModelText[] =
    "markov-sequence\n"
    "nodes a b\n"
    "length 3\n"
    "initial a 1/2 b 1/2\n"
    "transition 1 a -> a 1/4 b 3/4\n"
    "transition 1 b -> a 1 \n"
    "transition 2 a -> b 1\n"
    "transition 2 b -> a 1/2 b 1/2\n"
    "end\n";

const char kOtherModelText[] =
    "markov-sequence\n"
    "nodes a b\n"
    "length 2\n"
    "initial a 1\n"
    "transition 1 a -> b 1\n"
    "transition 1 b -> b 1\n"
    "end\n";

TEST_F(SnapshotFlowTest, FirstLoadParsesTextAndWritesSibling) {
  WriteText(path_, kModelText);
  auto mu = io::LoadMarkovSequenceFile(path_, /*refresh_snapshot=*/true);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_TRUE(Exists(io::SnapshotPath(path_)));
  // The sibling is a valid snapshot of exactly this model, tied to the
  // text bytes it came from.
  auto decoded = io::DecodeModel(ReadAll(io::SnapshotPath(path_)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->source_fp, io::Fnv1a64(kModelText));
  EXPECT_EQ(io::FormatMarkovSequence(*decoded->markov),
            io::FormatMarkovSequence(*mu));
}

TEST_F(SnapshotFlowTest, SecondLoadUsesTheSnapshot) {
  WriteText(path_, kModelText);
  auto first = io::LoadMarkovSequenceFile(path_, true);
  ASSERT_TRUE(first.ok());
#if TMS_OBS_ACTIVE
  const int64_t loaded_before =
      obs::Registry::Global().counter("io.snapshot_loaded").value();
#endif
  auto second = io::LoadMarkovSequenceFile(path_, true);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(io::FormatMarkovSequence(*second),
            io::FormatMarkovSequence(*first));
#if TMS_OBS_ACTIVE
  EXPECT_GT(obs::Registry::Global().counter("io.snapshot_loaded").value(),
            loaded_before);
#endif
}

TEST_F(SnapshotFlowTest, StaleSnapshotIsRejectedAndRebuilt) {
  WriteText(path_, kModelText);
  ASSERT_TRUE(io::LoadMarkovSequenceFile(path_, true).ok());
  // The text changes under the sibling: the old snapshot must lose.
  WriteText(path_, kOtherModelText);
  auto mu = io::LoadMarkovSequenceFile(path_, true);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_EQ(mu->length(), 2);
  auto decoded = io::DecodeModel(ReadAll(io::SnapshotPath(path_)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->source_fp, io::Fnv1a64(kOtherModelText));
}

TEST_F(SnapshotFlowTest, CorruptSnapshotFallsBackToText) {
  WriteText(path_, kModelText);
  ASSERT_TRUE(io::LoadMarkovSequenceFile(path_, true).ok());
  std::string snapshot = ReadAll(io::SnapshotPath(path_));
  snapshot[snapshot.size() / 2] ^= 0x40;
  WriteText(io::SnapshotPath(path_), snapshot);
#if TMS_OBS_ACTIVE
  const int64_t rejected_before =
      obs::Registry::Global().counter("io.snapshot_rejected").value();
#endif
  auto mu = io::LoadMarkovSequenceFile(path_, true);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_EQ(mu->length(), 3);
#if TMS_OBS_ACTIVE
  EXPECT_GT(obs::Registry::Global().counter("io.snapshot_rejected").value(),
            rejected_before);
#endif
  // The corrupt sibling was rebuilt, not served.
  EXPECT_TRUE(io::DecodeModel(ReadAll(io::SnapshotPath(path_))).ok());
}

TEST_F(SnapshotFlowTest, NoRefreshLeavesNoSibling) {
  WriteText(path_, kModelText);
  auto mu = io::LoadMarkovSequenceFile(path_, /*refresh_snapshot=*/false);
  ASSERT_TRUE(mu.ok());
  EXPECT_FALSE(Exists(io::SnapshotPath(path_)));
}

TEST_F(SnapshotFlowTest, BinaryFileLoadsDirectly) {
  WriteText(path_, kModelText);
  auto parsed = io::LoadMarkovSequenceFile(path_, false);
  ASSERT_TRUE(parsed.ok());
  const std::string bin_path = dir_ + "/m.tmsb_standalone";
  WriteText(bin_path, io::EncodeMarkovSequence(*parsed));
  auto mu = io::LoadMarkovSequenceFile(bin_path, false);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_EQ(io::FormatMarkovSequence(*mu), io::FormatMarkovSequence(*parsed));
}

}  // namespace
}  // namespace tms
