// End-to-end reproduction of the paper's running example: Figure 1,
// Figure 2, Table 1, Example 3.2, Example 3.4 and Example 4.2.

#include <gtest/gtest.h>

#include <set>

#include "markov/world_iter.h"
#include "numeric/rational.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/running_example.h"

namespace tms::workload {
namespace {

using numeric::Rational;

TEST(RunningExampleTest, Figure1Structure) {
  markov::MarkovSequence mu = Figure1Sequence();
  EXPECT_EQ(mu.length(), 5);
  EXPECT_EQ(mu.nodes().size(), 6u);
  EXPECT_TRUE(mu.has_exact());
  // Explicitly stated numbers: μ_0→(r1a) = 0.7 and μ_3→(la, lb) = 0.1.
  Symbol r1a = *mu.nodes().Find("r1a");
  Symbol la = *mu.nodes().Find("la");
  Symbol lb = *mu.nodes().Find("lb");
  EXPECT_EQ(mu.InitialExact(r1a), Rational(7, 10));
  EXPECT_EQ(mu.TransitionExact(3, la, lb), Rational(1, 10));
}

TEST(RunningExampleTest, Table1WorldProbabilitiesExact) {
  markov::MarkovSequence mu = Figure1Sequence();
  for (const Table1Row& row : Table1Rows()) {
    Str world = *ParseStr(mu.nodes(), row.world);
    EXPECT_NEAR(mu.WorldProbability(world), row.probability, 1e-12)
        << "row " << row.name;
  }
}

TEST(RunningExampleTest, Table1WorldProbabilitiesAsRationals) {
  markov::MarkovSequence mu = Figure1Sequence();
  auto expect_exact = [&](const char* world, Rational expected) {
    Str w = *ParseStr(mu.nodes(), world);
    EXPECT_EQ(mu.WorldProbabilityExact(w), expected) << world;
  };
  expect_exact("r1a la la r1a r2a", Rational(3969, 10000));
  expect_exact("r1a r1a la r1a r2a", Rational(49, 10000));
  expect_exact("la r1b r1b r1a r2a", Rational(2, 1000));
  expect_exact("r1a la r2a r1b lb", Rational(315, 10000));
  expect_exact("r1b r1b la lb lb", Rational(252, 10000));
  expect_exact("r1a r1a r2b r1b r1b", Rational(7, 1000));
}

TEST(RunningExampleTest, Table1Outputs) {
  markov::MarkovSequence mu = Figure1Sequence();
  transducer::Transducer fig2 = Figure2Transducer();
  for (const Table1Row& row : Table1Rows()) {
    Str world = *ParseStr(mu.nodes(), row.world);
    auto output = fig2.TransduceDeterministic(world);
    if (row.output == nullptr) {
      EXPECT_FALSE(output.has_value()) << "row " << row.name;
    } else {
      ASSERT_TRUE(output.has_value()) << "row " << row.name;
      EXPECT_EQ(*output, *ParseStr(fig2.output_alphabet(), row.output))
          << "row " << row.name;
    }
  }
}

TEST(RunningExampleTest, Example34ConfidenceOfTwelve) {
  markov::MarkovSequence mu = Figure1Sequence();
  transducer::Transducer fig2 = Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  Str twelve = *ParseStr(out, "1 2");

  // The paper sums the three worlds it lists (s, t, u): 0.4038 exactly.
  Rational listed = Rational(3969, 10000) + Rational(49, 10000) +
                    Rational(2, 1000);
  EXPECT_EQ(listed, Rational(4038, 10000));

  // Any Figure-1 reconstruction consistent with Table 1 also contains the
  // world r1b r1b la r1a r2a (see running_example.h), so the full
  // confidence is 0.4038 + 0.1764 = 0.5802. Verify against brute force
  // and the Theorem 4.6 algorithm.
  Str extra = *ParseStr(mu.nodes(), "r1b r1b la r1a r2a");
  EXPECT_EQ(mu.WorldProbabilityExact(extra), Rational(1764, 10000));
  EXPECT_EQ(*fig2.TransduceDeterministic(extra), twelve);

  double brute = testing::BruteForceConfidence(mu, fig2, twelve);
  EXPECT_NEAR(brute, 0.5802, 1e-12);
  auto dp = query::ConfidenceDeterministicExact(mu, fig2, twelve);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(*dp, Rational(5802, 10000));
}

TEST(RunningExampleTest, Example42EmaxOfTwelve) {
  markov::MarkovSequence mu = Figure1Sequence();
  transducer::Transducer fig2 = Figure2Transducer();
  auto emax = query::EmaxOfAnswer(mu, fig2,
                                  *ParseStr(fig2.output_alphabet(), "1 2"));
  ASSERT_TRUE(emax.has_value());
  EXPECT_NEAR(emax->prob, 0.3969, 1e-12);
  EXPECT_EQ(FormatStr(mu.nodes(), emax->world), "r1a la la r1a r2a");
}

TEST(RunningExampleTest, AnswerSetContainsPaperAnswers) {
  markov::MarkovSequence mu = Figure1Sequence();
  transducer::Transducer fig2 = Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  auto answers = query::AllAnswers(mu, fig2);
  std::set<Str> set(answers.begin(), answers.end());
  // Example 3.4: A^ω(μ) contains (at least) 12, 21λ, and ε.
  EXPECT_TRUE(set.count(*ParseStr(out, "1 2")));
  EXPECT_TRUE(set.count(*ParseStr(out, "2 1 λ")));
  EXPECT_TRUE(set.count(Str{}));
}

TEST(RunningExampleTest, TotalMassIsOne) {
  markov::MarkovSequence mu = Figure1Sequence();
  Rational total;
  markov::ForEachWorldExact(
      mu, [&](const Str&, const Rational& p) { total += p; });
  EXPECT_EQ(total, Rational(1));
}

TEST(RunningExampleTest, Figure2Properties) {
  transducer::Transducer fig2 = Figure2Transducer();
  // Example 3.3's classification: deterministic, selective, not uniform.
  EXPECT_TRUE(fig2.IsDeterministic());
  EXPECT_TRUE(fig2.IsSelective());
  EXPECT_FALSE(fig2.UniformEmissionLength().has_value());
  EXPECT_EQ(fig2.num_states(), 4);          // q0, qλ, q1, q2
  EXPECT_EQ(fig2.output_alphabet().size(), 3u);  // {1, 2, λ}
}

}  // namespace
}  // namespace tms::workload
