#include "query/emax.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(EmaxTest, RunningExampleValues) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  // Example 4.2: E_max(12) = 0.3969, witnessed by world s.
  auto emax12 = EmaxOfAnswer(mu, fig2, *ParseStr(out, "1 2"));
  ASSERT_TRUE(emax12.has_value());
  EXPECT_NEAR(emax12->prob, 0.3969, 1e-12);
  EXPECT_EQ(FormatStr(mu.nodes(), emax12->world), "r1a la la r1a r2a");
  // Non-answer.
  EXPECT_FALSE(EmaxOfAnswer(mu, fig2, *ParseStr(out, "λ")).has_value());
}

TEST(EmaxTest, TopAnswerOnRunningExample) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto top = TopAnswerByEmax(mu, fig2);
  ASSERT_TRUE(top.has_value());
  // The most probable accepted world is s (0.3969), transduced to 12.
  EXPECT_NEAR(top->prob, 0.3969, 1e-12);
  EXPECT_EQ(FormatStrCompact(fig2.output_alphabet(), top->output), "12");
  EXPECT_NEAR(mu.WorldProbability(top->world), top->prob, 1e-12);
  EXPECT_TRUE(fig2.Transduces(top->world, top->output));
}

TEST(EmaxTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(83);
  for (int trial = 0; trial < 25; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.max_emission = 2;
    opts.deterministic = rng.Bernoulli(0.5);
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto answers = testing::BruteForceAnswers(mu, t);

    // Per-answer E_max.
    for (const auto& [o, conf] : answers) {
      double expected = testing::BruteForceEmax(mu, t, o);
      auto got = EmaxOfAnswer(mu, t, o);
      ASSERT_TRUE(got.has_value());
      EXPECT_NEAR(got->prob, expected, 1e-9);
      // The witness world really is evidence.
      EXPECT_TRUE(t.Transduces(got->world, o));
      EXPECT_NEAR(mu.WorldProbability(got->world), got->prob, 1e-9);
      // E_max lower-bounds confidence.
      EXPECT_LE(got->prob, conf + 1e-12);
    }

    // Global top answer.
    auto top = TopAnswerByEmax(mu, t);
    if (answers.empty()) {
      EXPECT_FALSE(top.has_value());
    } else {
      ASSERT_TRUE(top.has_value());
      double best = 0;
      for (const auto& [o, conf] : answers) {
        best = std::max(best, testing::BruteForceEmax(mu, t, o));
      }
      EXPECT_NEAR(top->prob, best, 1e-9);
      EXPECT_TRUE(t.Transduces(top->world, top->output));
    }
  }
}

TEST(EmaxTest, LongSequenceNoUnderflow) {
  // n = 2000 with per-step probability 0.5 underflows linear doubles; the
  // log-domain Viterbi must still return a finite positive log score.
  const int n = 2000;
  Alphabet nodes = *Alphabet::FromNames({"x", "y"});
  std::vector<double> initial = {0.5, 0.5};
  std::vector<std::vector<double>> transitions(
      static_cast<size_t>(n - 1), {0.5, 0.5, 0.5, 0.5});
  auto mu = markov::MarkovSequence::Create(nodes, initial, transitions);
  ASSERT_TRUE(mu.ok());
  transducer::Transducer t(nodes, nodes, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {0}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {}).ok());
  auto top = TopAnswerByEmax(*mu, t);
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->world.size(), static_cast<size_t>(n));
  // All worlds are equally likely: p = 0.5^2000, which is 0 in linear
  // doubles — the witness world must still be valid.
  EXPECT_TRUE(t.Transduces(top->world, top->output));
}

}  // namespace
}  // namespace tms::query
