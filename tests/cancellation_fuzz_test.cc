// Cancellation / fault-injection fuzz over every enumeration engine: arm
// the global FaultInjector at a randomized (point, hit) and drive the
// enumeration to completion. Whatever fires — a cancellation token
// flipped mid-run, a simulated allocation failure, a delay widening race
// windows at 8 threads — the engine must shut down cleanly at an answer
// boundary with a structured stop reason, and the emitted answers must be
// an exact prefix of the unbounded stream. Run under
// -DTMS_SANITIZE=address,undefined and thread (tools/ci_verify.sh); the
// suites are in `ctest -L robustness`. Seeds obey TMS_TEST_SEED.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/fault.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "projector/imax_enum.h"
#include "projector/sprojector.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance RandomInstance(Rng& rng) {
  const int sigma = static_cast<int>(rng.UniformInt(2, 3));
  const int n = static_cast<int>(rng.UniformInt(2, 4));
  markov::MarkovSequence mu =
      workload::RandomMarkovSequence(sigma, n, /*support=*/sigma, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = static_cast<int>(rng.UniformInt(2, 3));
  opts.density = 1.2;
  opts.max_emission = 2;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

std::vector<ranking::ScoredAnswer> DrainEmax(const Instance& inst,
                                             exec::ThreadPool* pool,
                                             exec::RunContext* run,
                                             int guard = 500) {
  query::EmaxEnumerator it(inst.mu, inst.t,
                           query::EmaxEnumerator::Options{pool, nullptr, run});
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < guard; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

void ExpectPrefix(const std::vector<ranking::ScoredAnswer>& prefix,
                  const std::vector<ranking::ScoredAnswer>& full) {
  ASSERT_LE(prefix.size(), full.size());
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].output, full[i].output) << "answer " << i;
    EXPECT_EQ(prefix[i].score, full[i].score) << "answer " << i;
  }
}

class CancellationFuzzTest : public ::testing::Test {
 protected:
  void TearDown() override { exec::FaultInjector::Global().Reset(); }
};

// The Lawler-based ranked engine under randomized cancellations at every
// fault point it passes, at 1, 2 and 8 threads.
TEST_F(CancellationFuzzTest, RankedEngineCancelsCleanlyAnywhere) {
  const uint64_t seed = testing::TestSeed(9201);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::vector<std::string> points = {
      "lawler.pre_solve", "lawler.pre_heap_push", "cache.insert"};
  for (int trial = 0; trial < 24; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    const std::string& point =
        points[static_cast<size_t>(rng.UniformInt(0, 2))];
    const int64_t nth = rng.UniformInt(1, 6);
    for (int t : {1, 2, 8}) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " point=" + point +
                   " nth=" + std::to_string(nth) +
                   " threads=" + std::to_string(t));
      std::optional<exec::ThreadPool> pool;
      if (t > 1) pool.emplace(t - 1);
      exec::RunContext run;
      exec::FaultInjector::Global().ScheduleCancel(point, nth,
                                                   run.cancel_token());
      std::vector<ranking::ScoredAnswer> bounded =
          DrainEmax(inst, pool ? &*pool : nullptr, &run);
      exec::FaultInjector::Global().Reset();
      ExpectPrefix(bounded, full);
      // Either the point was never reached (run completed) or the
      // cancellation latched; nothing else.
      if (run.truncated()) {
        EXPECT_EQ(run.stop_reason(), exec::StopReason::kCancelled);
        EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
      } else {
        EXPECT_EQ(bounded.size(), full.size());
      }
    }
  }
}

// Simulated allocation failures at the solver and heap-push sites: the
// engine takes its failure path, reports kInternal, and still emits a
// clean prefix.
TEST_F(CancellationFuzzTest, RankedEngineSurvivesResourceFailures) {
  const uint64_t seed = testing::TestSeed(9202);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::vector<std::string> points = {"lawler.pre_solve",
                                           "lawler.pre_heap_push"};
  for (int trial = 0; trial < 16; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    const std::string& point =
        points[static_cast<size_t>(rng.UniformInt(0, 1))];
    const int64_t nth = rng.UniformInt(1, 5);
    for (int t : {1, 8}) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " point=" + point +
                   " nth=" + std::to_string(nth) +
                   " threads=" + std::to_string(t));
      std::optional<exec::ThreadPool> pool;
      if (t > 1) pool.emplace(t - 1);
      exec::RunContext run;
      exec::FaultInjector::Global().ScheduleFailure(point, nth);
      std::vector<ranking::ScoredAnswer> bounded =
          DrainEmax(inst, pool ? &*pool : nullptr, &run);
      exec::FaultInjector::Global().Reset();
      ExpectPrefix(bounded, full);
      if (run.truncated()) {
        EXPECT_EQ(run.stop_reason(), exec::StopReason::kFault);
        EXPECT_EQ(run.status().code(), StatusCode::kInternal);
      } else {
        EXPECT_EQ(bounded.size(), full.size());
      }
    }
  }
}

// A cache-insert failure is graceful degradation, not a stop: the build is
// served uncached and the stream is COMPLETE and identical.
TEST_F(CancellationFuzzTest, CacheInsertFailureDegradesGracefully) {
  const uint64_t seed = testing::TestSeed(9203);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    exec::RunContext run;
    exec::FaultInjector::Global().ScheduleFailure("cache.insert",
                                                  /*nth_hit=*/0);  // every
    std::vector<ranking::ScoredAnswer> bounded = DrainEmax(inst, nullptr, &run);
    exec::FaultInjector::Global().Reset();
    ASSERT_EQ(bounded.size(), full.size());
    ExpectPrefix(bounded, full);
    EXPECT_FALSE(run.truncated());
    EXPECT_TRUE(run.status().ok());
  }
}

// Delays at the heap-push site widen the window between a pop's emission
// and its child fanout — the classic spot for a parallel-merge race. At 8
// threads with delays the output must STILL be byte-identical. (Run under
// TSan for the data-race half of the claim.)
TEST_F(CancellationFuzzTest, DelaysDoNotPerturbParallelOutput) {
  const uint64_t seed = testing::TestSeed(9204);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    exec::FaultInjector::Global().ScheduleDelay(
        "lawler.pre_solve", /*nth_hit=*/rng.UniformInt(1, 4),
        std::chrono::milliseconds(2));
    exec::ThreadPool pool(7);
    std::vector<ranking::ScoredAnswer> delayed =
        DrainEmax(inst, &pool, nullptr);
    exec::FaultInjector::Global().Reset();
    ASSERT_EQ(delayed.size(), full.size());
    ExpectPrefix(delayed, full);
  }
}

// The unranked engine under randomized cancellation and failure at its
// oracle gate.
TEST_F(CancellationFuzzTest, UnrankedEngineCancelsCleanly) {
  const uint64_t seed = testing::TestSeed(9205);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 16; ++trial) {
    Instance inst = RandomInstance(rng);
    std::vector<Str> full;
    {
      query::UnrankedEnumerator it(inst.mu, inst.t);
      while (auto a = it.Next()) {
        full.push_back(std::move(a->output));
        if (full.size() > 2000) break;
      }
    }
    const bool cancel = rng.Bernoulli(0.5);
    const int64_t nth = rng.UniformInt(1, 10);
    SCOPED_TRACE("trial " + std::to_string(trial) +
                 (cancel ? " cancel" : " failure") +
                 " nth=" + std::to_string(nth));
    exec::RunContext run;
    if (cancel) {
      exec::FaultInjector::Global().ScheduleCancel("unranked.pre_oracle", nth,
                                                   run.cancel_token());
    } else {
      exec::FaultInjector::Global().ScheduleFailure("unranked.pre_oracle", nth);
    }
    std::vector<Str> bounded;
    {
      query::UnrankedEnumerator it(inst.mu, inst.t, &run);
      while (auto a = it.Next()) {
        bounded.push_back(std::move(a->output));
        if (bounded.size() > 2000) break;
      }
    }
    exec::FaultInjector::Global().Reset();
    ASSERT_LE(bounded.size(), full.size());
    for (size_t i = 0; i < bounded.size(); ++i) EXPECT_EQ(bounded[i], full[i]);
    if (run.truncated()) {
      EXPECT_EQ(run.stop_reason(), cancel ? exec::StopReason::kCancelled
                                          : exec::StopReason::kFault);
    } else {
      EXPECT_EQ(bounded.size(), full.size());
    }
  }
}

// The s-projector ranked engine through the same Lawler fault points.
TEST_F(CancellationFuzzTest, ImaxEngineCancelsCleanly) {
  const uint64_t seed = testing::TestSeed(9206);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // RandomMarkovSequence interns its nodes as n0, n1, ... — the projector
  // must share that alphabet exactly.
  Alphabet ab = workload::MakeSymbols(2, "n");
  auto p = projector::SProjector::FromRegex(ab, ". *", "n0 +", ". *");
  ASSERT_TRUE(p.ok()) << p.status();
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    std::vector<ranking::ScoredAnswer> full;
    {
      auto it = projector::ImaxEnumerator::Create(&mu, &*p);
      ASSERT_TRUE(it.ok());
      while (auto a = it->Next()) full.push_back(std::move(*a));
    }
    const int64_t nth = rng.UniformInt(1, 6);
    for (int t : {1, 8}) {
      SCOPED_TRACE("trial " + std::to_string(trial) +
                   " nth=" + std::to_string(nth) +
                   " threads=" + std::to_string(t));
      std::optional<exec::ThreadPool> pool;
      if (t > 1) pool.emplace(t - 1);
      exec::RunContext run;
      exec::FaultInjector::Global().ScheduleCancel("lawler.pre_solve", nth,
                                                   run.cancel_token());
      auto it = projector::ImaxEnumerator::Create(&mu, &*p,
                                                  pool ? &*pool : nullptr,
                                                  &run);
      ASSERT_TRUE(it.ok());
      std::vector<ranking::ScoredAnswer> bounded;
      while (auto a = it->Next()) bounded.push_back(std::move(*a));
      exec::FaultInjector::Global().Reset();
      ExpectPrefix(bounded, full);
      if (run.truncated()) {
        EXPECT_EQ(run.stop_reason(), exec::StopReason::kCancelled);
      } else {
        EXPECT_EQ(bounded.size(), full.size());
      }
    }
  }
}

// The fault-point catalog is part of the public robustness contract
// (docs/ROBUSTNESS.md): a ranked run over a composition cache passes
// lawler.pre_solve and cache.insert; heap pushes happen whenever a pop
// fans out. If this test fails, a point was renamed or removed — update
// the catalog and the tests together.
TEST_F(CancellationFuzzTest, FaultPointCatalogIsLive) {
  const uint64_t seed = testing::TestSeed(9207);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Instance inst = RandomInstance(rng);
  exec::FaultInjector::Global().Arm();
  (void)DrainEmax(inst, nullptr, nullptr);
  {
    query::UnrankedEnumerator it(inst.mu, inst.t);
    for (int i = 0; i < 3 && it.Next().has_value(); ++i) {
    }
  }
  auto& injector = exec::FaultInjector::Global();
  EXPECT_GT(injector.HitCount("lawler.pre_solve"), 0);
  EXPECT_GT(injector.HitCount("cache.insert"), 0);
  EXPECT_GT(injector.HitCount("unranked.pre_oracle"), 0);
}

}  // namespace
}  // namespace tms
