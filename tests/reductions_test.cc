// Hardness-instance generators: the Theorem 4.4 / 4.5 max-3-DNF devices,
// the Proposition 4.7 / Theorem 4.9 counting family, and the Theorem 5.3
// independent-set family.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "automata/ops.h"
#include "common/rng.h"
#include "query/confidence.h"
#include "query/confidence_exact.h"
#include "query/emax.h"
#include "reductions/dnf2.h"
#include "reductions/independent_set.h"
#include "reductions/max3dnf.h"
#include "test_util.h"

namespace tms::reductions {
namespace {

Dnf3Formula SmallFormula() {
  // Variables x0..x3; clauses (x0 ∧ x1 ∧ ¬x2), (¬x0 ∧ x2 ∧ x3),
  // (x1 ∧ x2 ∧ x3).
  Dnf3Formula f;
  f.num_vars = 4;
  f.clauses = {
      {{0, 1, 2}, {true, true, false}},
      {{0, 2, 3}, {false, true, true}},
      {{1, 2, 3}, {true, true, true}},
  };
  return f;
}

TEST(Dnf3Test, CountSatisfiedAndOptimum) {
  Dnf3Formula f = SmallFormula();
  EXPECT_EQ(f.CountSatisfied({true, true, false, false}), 1);
  EXPECT_EQ(f.CountSatisfied({false, true, true, true}), 2);
  EXPECT_EQ(f.CountSatisfied({false, false, false, false}), 0);
  EXPECT_EQ(f.BruteForceOptimum(), 2);  // clauses 1 and 3 conflict with 2? —
  // (x0∧x1∧¬x2) needs x2=0; the others need x2=1; clauses 2 and 3 are
  // compatible (x0=0, x1=1, x2=1, x3=1) → optimum 2.
}

struct GeneratorParam {
  bool use_projector;
};

class Max3DnfSweep : public ::testing::TestWithParam<GeneratorParam> {};

TEST_P(Max3DnfSweep, ConfidenceCountsSatisfiedClauses) {
  Dnf3Formula f = SmallFormula();
  auto instance = GetParam().use_projector ? Max3DnfToProjector(f)
                                           : Max3DnfToMealy(f);
  ASSERT_TRUE(instance.ok()) << instance.status();

  // conf(o_x) = #sat(x) · base_mass for every assignment x, verified by
  // brute force over all 16 assignments.
  const Alphabet& delta = instance->t.output_alphabet();
  Symbol zero = *delta.Find("0");
  Symbol one = *delta.Find("1");
  for (uint32_t bits = 0; bits < 16; ++bits) {
    std::vector<bool> x(4);
    Str output;
    for (int v = 0; v < 4; ++v) {
      x[static_cast<size_t>(v)] = (bits >> v) & 1;
      output.push_back(x[static_cast<size_t>(v)] ? one : zero);
    }
    double expected = f.CountSatisfied(x) * instance->base_mass;
    double brute =
        testing::BruteForceConfidence(instance->mu, instance->t, output);
    EXPECT_NEAR(brute, expected, 1e-12) << "bits=" << bits;
    auto dp = query::Confidence(instance->mu, instance->t, output);
    ASSERT_TRUE(dp.ok());
    EXPECT_NEAR(*dp, expected, 1e-9);
  }
}

TEST_P(Max3DnfSweep, EmaxIsBlindToTheClauseCount) {
  // E_max(o_x) = base_mass for every assignment satisfying >= 1 clause —
  // the heuristic cannot separate good assignments from barely-satisfying
  // ones (the gap behind Theorems 4.4/4.5).
  Dnf3Formula f = SmallFormula();
  auto instance = GetParam().use_projector ? Max3DnfToProjector(f)
                                           : Max3DnfToMealy(f);
  ASSERT_TRUE(instance.ok());
  const Alphabet& delta = instance->t.output_alphabet();
  Symbol zero = *delta.Find("0");
  Symbol one = *delta.Find("1");
  for (uint32_t bits : {0b0111u, 0b1110u, 0b0110u}) {
    std::vector<bool> x(4);
    Str output;
    for (int v = 0; v < 4; ++v) {
      x[static_cast<size_t>(v)] = (bits >> v) & 1;
      output.push_back(x[static_cast<size_t>(v)] ? one : zero);
    }
    if (f.CountSatisfied(x) == 0) continue;
    auto emax = query::EmaxOfAnswer(instance->mu, instance->t, output);
    ASSERT_TRUE(emax.has_value());
    EXPECT_NEAR(emax->prob, instance->base_mass, 1e-12);
  }
}

TEST_P(Max3DnfSweep, TopConfidenceAnswerSolvesMax3Dnf) {
  Dnf3Formula f = SmallFormula();
  auto instance = GetParam().use_projector ? Max3DnfToProjector(f)
                                           : Max3DnfToMealy(f);
  ASSERT_TRUE(instance.ok());
  auto answers = testing::BruteForceAnswers(instance->mu, instance->t);
  double best = 0;
  Str best_output;
  for (const auto& [o, conf] : answers) {
    if (conf > best) {
      best = conf;
      best_output = o;
    }
  }
  EXPECT_NEAR(best, f.BruteForceOptimum() * instance->base_mass, 1e-12);
  auto decoded = DecodeAssignments(*instance, best_output, f.num_vars);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(f.CountSatisfied((*decoded)[0]), f.BruteForceOptimum());
}

INSTANTIATE_TEST_SUITE_P(Generators, Max3DnfSweep,
                         ::testing::Values(GeneratorParam{false},
                                           GeneratorParam{true}));

TEST(Max3DnfTest, MealyInstanceClassification) {
  auto instance = Max3DnfToMealy(SmallFormula());
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->t.IsMealy());
  EXPECT_EQ(instance->t.num_states(), 1);  // Theorem 4.4: |Q_A| = 1
  EXPECT_EQ(instance->mu.length(), 4);
}

TEST(Max3DnfTest, ProjectorInstanceIsTheFixedDevice) {
  auto instance = Max3DnfToProjector(SmallFormula());
  ASSERT_TRUE(instance.ok());
  // Theorem 4.5: fixed deterministic projector, |Σ|=4, |Δ|≤2 effective,
  // |Q|=1.
  EXPECT_TRUE(instance->t.IsDeterministic());
  EXPECT_TRUE(instance->t.IsProjector());
  EXPECT_EQ(instance->t.num_states(), 1);
  EXPECT_EQ(instance->t.input_alphabet().size(), 4u);
  EXPECT_EQ(instance->mu.length(), 3 * 4);  // k·m
}

TEST(Max3DnfTest, AmplificationMultipliesConfidence) {
  Dnf3Formula f = SmallFormula();
  auto one_copy = Max3DnfToMealy(f, 1);
  auto two_copies = Max3DnfToMealy(f, 2);
  ASSERT_TRUE(one_copy.ok());
  ASSERT_TRUE(two_copies.ok());
  EXPECT_EQ(two_copies->mu.length(), 8);

  // conf of the doubled optimum output = (OPT · base)^2.
  auto answers1 = testing::BruteForceAnswers(one_copy->mu, one_copy->t);
  double best1 = 0;
  Str best_output;
  for (const auto& [o, c] : answers1) {
    if (c > best1) {
      best1 = c;
      best_output = o;
    }
  }
  Str doubled = Concat(best_output, best_output);
  double conf2 =
      testing::BruteForceConfidence(two_copies->mu, two_copies->t, doubled);
  EXPECT_NEAR(conf2, best1 * best1, 1e-12);
}

TEST(Max3DnfTest, RandomFormulaRoundTrip) {
  Rng rng(179);
  Dnf3Formula f = Dnf3Formula::Random(5, 4, rng);
  EXPECT_EQ(f.num_vars, 5);
  EXPECT_EQ(f.clauses.size(), 4u);
  for (const Dnf3Clause& c : f.clauses) {
    EXPECT_NE(c.var[0], c.var[1]);
    EXPECT_NE(c.var[1], c.var[2]);
    EXPECT_NE(c.var[0], c.var[2]);
  }
  auto instance = Max3DnfToProjector(f);
  ASSERT_TRUE(instance.ok());
  auto top = query::TopAnswerByEmax(instance->mu, instance->t);
  ASSERT_TRUE(top.has_value());
  EXPECT_NEAR(top->prob, instance->base_mass, 1e-12);
}

TEST(Max3DnfTest, GeneratorValidation) {
  Dnf3Formula bad;
  bad.num_vars = 2;
  bad.clauses = {{{0, 1, 1}, {true, true, true}}};
  EXPECT_FALSE(Max3DnfToMealy(bad).ok());
  EXPECT_FALSE(Max3DnfToProjector(bad).ok());
  Dnf3Formula f = SmallFormula();
  EXPECT_FALSE(Max3DnfToMealy(f, 0).ok());
}

TEST(Dnf2Test, BruteForceCount) {
  // φ = (x0 ∧ y0): satisfied by 1/4 of assignments over 2 variables.
  Dnf2Formula f;
  f.num_x = 1;
  f.num_y = 1;
  f.terms = {{0, 0}};
  EXPECT_EQ(f.BruteForceCount().ToString(), "1");
  // Two x, two y, φ = (x0∧y0) ∨ (x1∧y1).
  Dnf2Formula g;
  g.num_x = 2;
  g.num_y = 2;
  g.terms = {{0, 0}, {1, 1}};
  EXPECT_EQ(g.BruteForceCount().ToString(), "7");
}

TEST(Dnf2Test, NfaAcceptsExactlySatisfyingAssignments) {
  Dnf2Formula g;
  g.num_x = 2;
  g.num_y = 2;
  g.terms = {{0, 0}, {1, 1}};
  auto nfa = Dnf2ToNfa(g);
  ASSERT_TRUE(nfa.ok());
  auto count = automata::CountAcceptedStrings(automata::Determinize(*nfa), 4);
  EXPECT_EQ(count.ToString(), "7");
  // Membership spot checks: x0=1,y0=1 satisfies.
  EXPECT_TRUE(nfa->Accepts({1, 0, 1, 0}));
  EXPECT_FALSE(nfa->Accepts({1, 0, 0, 1}));  // x0&y1, x1&y0: no term
  EXPECT_FALSE(nfa->Accepts({0, 0, 0, 0}));
  EXPECT_FALSE(nfa->Accepts({1, 1}));  // wrong length
}

TEST(Dnf2Test, CountingInstanceConfidenceEncodesSharpSat) {
  Dnf2Formula g;
  g.num_x = 2;
  g.num_y = 2;
  g.terms = {{0, 0}, {1, 1}};
  auto instance = Dnf2CountingInstance(g);
  ASSERT_TRUE(instance.ok()) << instance.status();
  // conf(z^4) = #SAT / 2^4 = 7/16, via the exact rational algorithm.
  auto conf = query::ConfidenceExactRational(instance->mu, instance->t,
                                             instance->answer);
  ASSERT_TRUE(conf.ok()) << conf.status();
  EXPECT_EQ(*conf, numeric::Rational(7, 16));
  // And via brute force.
  double brute = testing::BruteForceConfidence(instance->mu, instance->t,
                                               instance->answer);
  EXPECT_NEAR(brute, 7.0 / 16.0, 1e-12);
}

TEST(Dnf2Test, CountingInstanceIsOneUniform) {
  Rng rng(181);
  Dnf2Formula g = Dnf2Formula::Random(3, 3, 4, rng);
  auto instance = Dnf2CountingInstance(g);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->t.UniformEmissionLength(), std::optional<int>(1));
  // Cross-check the subset algorithm (Thm 4.8) against brute force.
  auto sub = query::ConfidenceUniformSubset(instance->mu, instance->t,
                                            instance->answer);
  ASSERT_TRUE(sub.ok());
  double brute = testing::BruteForceConfidence(instance->mu, instance->t,
                                               instance->answer);
  EXPECT_NEAR(*sub, brute, 1e-9);
  double expected =
      g.BruteForceCount().ToDouble() / std::pow(2.0, g.num_x + g.num_y);
  EXPECT_NEAR(*sub, expected, 1e-9);
}

TEST(IndependentSetTest, GraphBasics) {
  Rng rng(191);
  Graph g = Graph::Random(6, 0.4, rng);
  EXPECT_GE(g.BruteForceMaxIndependentSet(), 1);
  Graph empty;
  empty.num_vertices = 4;
  empty.adj.assign(16, false);
  EXPECT_EQ(empty.BruteForceMaxIndependentSet(), 4);
  EXPECT_TRUE(empty.IsOrderTransitive());
  Graph path;  // 0-1, 1-2: non-edges {0,2} transitive? ¬E(0,2) trivially.
  path.num_vertices = 3;
  path.adj.assign(9, false);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  EXPECT_EQ(path.BruteForceMaxIndependentSet(), 2);
}

TEST(IndependentSetTest, RunsEncodeOrderedNonAdjacentSequences) {
  Rng rng(193);
  Graph g;
  g.num_vertices = 3;
  g.adj.assign(9, false);
  g.AddEdge(0, 1);  // vertices 0 and 1 adjacent
  auto instance = IndependentSetToSProjector(g, 4, 0.5);
  ASSERT_TRUE(instance.ok()) << instance.status();
  // Chain support: after v0, only v2 may follow without a reset.
  auto truth = testing::BruteForceSProjectorAnswers(instance->mu, instance->p);
  Symbol v0 = *instance->mu.nodes().Find("v0");
  Symbol v1 = *instance->mu.nodes().Find("v1");
  Symbol v2 = *instance->mu.nodes().Find("v2");
  EXPECT_TRUE(truth.count(Str{v0, v2}));       // independent, increasing
  EXPECT_FALSE(truth.count(Str{v0, v1}));      // adjacent
  EXPECT_FALSE(truth.count(Str{v2, v0}));      // decreasing order
  EXPECT_TRUE(truth.count(Str{v1, v2}));
}

TEST(IndependentSetTest, Validation) {
  Graph g;
  g.num_vertices = 0;
  EXPECT_FALSE(IndependentSetToSProjector(g, 4, 0.5).ok());
  Graph ok;
  ok.num_vertices = 2;
  ok.adj.assign(4, false);
  EXPECT_FALSE(IndependentSetToSProjector(ok, 0, 0.5).ok());
  EXPECT_FALSE(IndependentSetToSProjector(ok, 4, 0.0).ok());
  EXPECT_FALSE(IndependentSetToSProjector(ok, 4, 1.0).ok());
}

}  // namespace
}  // namespace tms::reductions
