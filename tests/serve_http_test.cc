// Unit tests for the socket-free serving pieces: HTTP parsing and
// response formatting (serve/http.h), the admission gate
// (serve/admission.h), the model registry (serve/registry.h), and the
// shared wire serializers (serve/wire.h). The fd-bound pieces
// (RequestReader, ChunkedWriter) run over socketpair(2) — still no
// network. Full-server integration lives in serve_test.cc.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "markov/markov_sequence.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "serve/registry.h"
#include "serve/wire.h"
#include "workload/running_example.h"

namespace tms::serve {
namespace {

// ---------------------------------------------------------------- parsing

TEST(ParseRequestHeadTest, ParsesRequestLineAndHeaders) {
  HttpRequest req;
  Status st = ParseRequestHead(
      "POST /query/hospital?k=3&mode=enum HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 42\r\n",
      &req);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/query/hospital");
  EXPECT_EQ(req.query, "k=3&mode=enum");
  ASSERT_NE(req.FindHeader("content-length"), nullptr);
  EXPECT_EQ(*req.FindHeader("content-length"), "42");
  // Header names are lowercased at parse time.
  ASSERT_NE(req.FindHeader("host"), nullptr);
  EXPECT_EQ(req.FindHeader("Host"), nullptr);
}

TEST(ParseRequestHeadTest, RejectsMalformedInput) {
  HttpRequest req;
  EXPECT_FALSE(ParseRequestHead("", &req).ok());
  EXPECT_FALSE(ParseRequestHead("GET /\r\n", &req).ok());  // no version
  EXPECT_FALSE(ParseRequestHead("GET / HTTP/2.0\r\n", &req).ok());
  EXPECT_FALSE(
      ParseRequestHead("GET / HTTP/1.1\r\nno-colon-here\r\n", &req).ok());
}

TEST(ParseQueryParamsTest, SplitsPairsInOrder) {
  auto params = ParseQueryParams("k=5&deadline_ms=100&flag");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "k");
  EXPECT_EQ(params[0].second, "5");
  EXPECT_EQ(params[1].first, "deadline_ms");
  EXPECT_EQ(params[1].second, "100");
  EXPECT_EQ(params[2].first, "flag");
  EXPECT_EQ(params[2].second, "");
  ASSERT_NE(FindParam(params, "k"), nullptr);
  EXPECT_EQ(*FindParam(params, "k"), "5");
  EXPECT_EQ(FindParam(params, "absent"), nullptr);
  EXPECT_TRUE(ParseQueryParams("").empty());
}

TEST(ResponseTest, SimpleResponseCarriesLengthAndClose) {
  std::string r = SimpleResponse(404, "application/json", "{}\n");
  EXPECT_NE(r.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 7), "\r\n\r\n{}\n");
}

TEST(ResponseTest, ChunkedHeadDeclaresChunkedEncoding) {
  std::string r = ChunkedResponseHead(200, "application/x-ndjson",
                                      "X-Query-Id: 7\r\n");
  EXPECT_NE(r.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(r.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_NE(r.find("X-Query-Id: 7\r\n"), std::string::npos);
  EXPECT_EQ(r.find("Content-Length"), std::string::npos);
}

// ------------------------------------------------------- socketpair pieces

class SocketPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  void CloseWriteEnd() {
    close(fds_[0]);
    fds_[0] = -1;
  }
  std::string ReadAll(int fd) {
    std::string out;
    char buf[1024];
    ssize_t n;
    while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
    return out;
  }
  int fds_[2];
};

TEST_F(SocketPairTest, ChunkedWriterFramesEveryChunk) {
  ChunkedWriter writer(fds_[0]);
  EXPECT_TRUE(writer.WriteChunk("hello\n"));
  EXPECT_TRUE(writer.WriteChunk("{\"a\":1}\n"));
  EXPECT_TRUE(writer.Finish());
  CloseWriteEnd();
  EXPECT_EQ(ReadAll(fds_[1]),
            "6\r\nhello\n\r\n"
            "8\r\n{\"a\":1}\n\r\n"
            "0\r\n\r\n");
}

TEST_F(SocketPairTest, ReaderParsesHeadThenBody) {
  const std::string wire =
      "POST /query/m HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "abcde";
  ASSERT_EQ(write(fds_[0], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  CloseWriteEnd();
  RequestReader reader(fds_[1], nullptr);
  HttpRequest req;
  Status st = reader.ReadHead(&req);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(req.method, "POST");
  EXPECT_TRUE(req.body.empty());
  st = reader.ReadBody(&req);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(req.body, "abcde");
}

TEST_F(SocketPairTest, ReaderSurvivesByteAtATimeDelivery) {
  // The "\r\n\r\n" scan must work across arbitrary recv boundaries.
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  std::thread dripper([&] {
    for (char c : wire) {
      ASSERT_EQ(write(fds_[0], &c, 1), 1);
    }
    CloseWriteEnd();
  });
  RequestReader reader(fds_[1], nullptr);
  HttpRequest req;
  Status st = reader.ReadHead(&req);
  dripper.join();
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(req.path, "/healthz");
}

TEST_F(SocketPairTest, ReaderRejectsOversizedHead) {
  RequestReader::Limits limits;
  limits.max_head_bytes = 64;
  std::string wire = "GET /" + std::string(200, 'x') + " HTTP/1.1\r\n\r\n";
  ASSERT_EQ(write(fds_[0], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  CloseWriteEnd();
  RequestReader reader(fds_[1], nullptr, limits);
  HttpRequest req;
  EXPECT_EQ(reader.ReadHead(&req).code(), StatusCode::kOutOfRange);
}

TEST_F(SocketPairTest, ReaderRejectsOversizedBody) {
  RequestReader::Limits limits;
  limits.max_body_bytes = 4;
  const std::string wire =
      "POST /q HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
  ASSERT_EQ(write(fds_[0], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  CloseWriteEnd();
  RequestReader reader(fds_[1], nullptr, limits);
  HttpRequest req;
  ASSERT_TRUE(reader.ReadHead(&req).ok());
  EXPECT_EQ(reader.ReadBody(&req).code(), StatusCode::kOutOfRange);
}

TEST_F(SocketPairTest, ReaderReportsClientCloseAsNotFound) {
  CloseWriteEnd();
  RequestReader reader(fds_[1], nullptr);
  HttpRequest req;
  EXPECT_EQ(reader.ReadHead(&req).code(), StatusCode::kNotFound);
}

TEST_F(SocketPairTest, ParkedReaderObservesShouldStop) {
  // No bytes ever arrive; should_stop flips after a few polls and the
  // reader must return Cancelled instead of blocking forever.
  RequestReader::Limits limits;
  limits.poll_interval_ms = 5;
  std::atomic<bool> stop{false};
  RequestReader reader(fds_[1], [&] { return stop.load(); }, limits);
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true);
  });
  HttpRequest req;
  Status st = reader.ReadHead(&req);
  flipper.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// ------------------------------------------------------------- admission

TEST(AdmissionGateTest, AdmitsUpToLimitThenRefuses) {
  AdmissionGate gate(2);
  EXPECT_TRUE(gate.TryEnter());
  EXPECT_TRUE(gate.TryEnter());
  EXPECT_FALSE(gate.TryEnter());
  gate.Exit();
  EXPECT_TRUE(gate.TryEnter());
  gate.Exit();
  gate.Exit();
}

TEST(AdmissionGateTest, ZeroRefusesEverything) {
  AdmissionGate gate(0);
  EXPECT_FALSE(gate.TryEnter());
}

TEST(AdmissionGateTest, GateGuardReleasesOnScopeExit) {
  AdmissionGate gate(1);
  {
    GateGuard guard(&gate);
    EXPECT_TRUE(guard.admitted());
    GateGuard refused(&gate);
    EXPECT_FALSE(refused.admitted());
  }
  EXPECT_TRUE(gate.TryEnter());
  gate.Exit();
}

TEST(AdmissionGateTest, NeverExceedsLimitUnderContention) {
  AdmissionGate gate(3);
  std::atomic<int> inside{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        GateGuard guard(&gate);
        if (!guard.admitted()) continue;
        int now = inside.fetch_add(1) + 1;
        int seen = max_seen.load();
        while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), 3);
  EXPECT_TRUE(gate.TryEnter());  // all slots released
  gate.Exit();
}

// -------------------------------------------------------------- registry

TEST(ModelRegistryTest, InsertFindAndNames) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Insert("fig1", workload::Figure1Sequence()).ok());
  EXPECT_NE(registry.Find("fig1"), nullptr);
  EXPECT_EQ(registry.Find("absent"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"fig1"});
}

TEST(ModelRegistryTest, RejectsDuplicateAndEmptyNames) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Insert("m", workload::Figure1Sequence()).ok());
  EXPECT_FALSE(registry.Insert("m", workload::Figure1Sequence()).ok());
  EXPECT_FALSE(registry.Insert("", workload::Figure1Sequence()).ok());
}

TEST(ModelRegistryTest, LoadReportsBadPath) {
  auto registry = ModelRegistry::Load({{"m", "/nonexistent/file.tms"}});
  EXPECT_FALSE(registry.ok());
}

// ------------------------------------------------------------------ wire

TEST(WireTest, StopReasonSpellingsAreStable) {
  EXPECT_STREQ(StopReasonName(exec::StopReason::kNone), "NONE");
  EXPECT_STREQ(StopReasonName(exec::StopReason::kAnswerCap), "ANSWER_CAP");
  EXPECT_STREQ(StopReasonName(exec::StopReason::kBudget), "BUDGET");
  EXPECT_STREQ(StopReasonName(exec::StopReason::kDeadline), "DEADLINE");
  EXPECT_STREQ(StopReasonName(exec::StopReason::kCancelled), "CANCELLED");
  EXPECT_STREQ(StopReasonName(exec::StopReason::kFault), "FAULT");
}

TEST(WireTest, ExecJsonShape) {
  EXPECT_EQ(ExecJson(Status::Ok(), exec::StopReason::kNone, 3, 8),
            "{\"status\":\"OK\",\"reason\":\"NONE\",\"truncated\":false,"
            "\"answers\":3,\"work\":8}");
  EXPECT_EQ(
      ExecJson(Status::Ok(), exec::StopReason::kAnswerCap, 1, 2),
      "{\"status\":\"OK\",\"reason\":\"ANSWER_CAP\",\"truncated\":true,"
      "\"answers\":1,\"work\":2}");
}

TEST(WireTest, AnswerJsonEscapesAndKeysByScore) {
  std::string out;
  AppendAnswerJson("a \"b\"", "emax", 0.5, 0.25, &out);
  EXPECT_EQ(out,
            "{\"answer\":\"a \\\"b\\\"\",\"emax\":0.5,\"confidence\":0.25}");
}

}  // namespace
}  // namespace tms::serve
