// Integration tests for the full HttpServer (serve/server.h): a real
// server on an ephemeral loopback port, driven by a raw-socket HTTP/1.1
// client. Covers the serving acceptance contract:
//
//   * the streamed answer lines of POST /query are byte-identical to the
//     one-shot evaluator path (same engine, same serializers) — including
//     under truncation, where the stream is an exact prefix;
//   * per-request limits (deadline_ms / max_answers / budget) map onto
//     the RunContext truncation contract and surface the right stop
//     reason in the footer;
//   * concurrent requests at 1/2/8 engine threads produce identical
//     bytes, each under its own QueryScope (distinct X-Query-Id);
//   * admission control refuses over-limit queries with 429, decided
//     before the body is read;
//   * shutdown drains: parked connections observe the stop flag, live
//     streams end with a CANCELLED footer, Shutdown() joins everything;
//   * precompiled queries (registry Precompile + ?precompiled=): the
//     stored stream is byte-identical to the body-query stream, the
//     artifact persists and reloads on a second cold start, a corrupted
//     artifact is rejected loudly (optimize.artifact_rejected) with a
//     correct on-the-fly fallback, and the request plane 400s non-empty
//     bodies / 404s unknown names.
//
// Labeled `serve` (with `concurrency` where threads race); run just these
// with `ctest -L serve`.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine_options.h"
#include "exec/run_context.h"
#include "gtest/gtest.h"
#include "io/text_format.h"
#include "obs/metrics.h"
#include "optimize/artifact.h"
#include "optimize/transducer_opt.h"
#include "query/confidence.h"
#include "query/engine_factory.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "strings/str.h"
#include "workload/running_example.h"

namespace tms::serve {
namespace {

// ------------------------------------------------------ raw HTTP client

// Connects to 127.0.0.1:port; returns the fd or -1.
int Connect(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

std::string ReadToEof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  return out;
}

// One full round trip: send `raw`, read until the server closes.
std::string RoundTrip(int port, const std::string& raw) {
  int fd = Connect(port);
  if (fd < 0) return "";
  if (send(fd, raw.data(), raw.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(raw.size())) {
    close(fd);
    return "";
  }
  std::string response = ReadToEof(fd);
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RoundTrip(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string Post(int port, const std::string& path, const std::string& body) {
  return RoundTrip(port, "POST " + path + " HTTP/1.1\r\nHost: t\r\n" +
                             "Content-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" +
                             body);
}

// A parsed response: status code, headers (raw block), decoded body
// (de-chunked when Transfer-Encoding: chunked).
struct Response {
  int code = 0;
  std::string head;
  std::string body;
};

std::optional<Response> ParseResponse(const std::string& raw) {
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  Response r;
  r.head = raw.substr(0, head_end + 2);
  if (raw.compare(0, 9, "HTTP/1.1 ") != 0) return std::nullopt;
  r.code = std::atoi(raw.c_str() + 9);
  std::string rest = raw.substr(head_end + 4);
  if (r.head.find("Transfer-Encoding: chunked") == std::string::npos) {
    r.body = std::move(rest);
    return r;
  }
  // De-chunk.
  size_t pos = 0;
  while (true) {
    const size_t line_end = rest.find("\r\n", pos);
    if (line_end == std::string::npos) return std::nullopt;
    const size_t size = std::strtoul(rest.c_str() + pos, nullptr, 16);
    pos = line_end + 2;
    if (size == 0) break;
    if (pos + size + 2 > rest.size()) return std::nullopt;
    r.body.append(rest, pos, size);
    pos += size + 2;  // chunk data + trailing CRLF
  }
  return r;
}

std::vector<std::string> Lines(const std::string& body) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < body.size()) {
    const size_t end = body.find('\n', pos);
    if (end == std::string::npos) {
      lines.push_back(body.substr(pos));
      break;
    }
    lines.push_back(body.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

// The value of a response header, or "".
std::string HeaderValue(const std::string& head, const std::string& name) {
  const std::string needle = name + ": ";
  const size_t pos = head.find(needle);
  if (pos == std::string::npos) return "";
  const size_t end = head.find("\r\n", pos);
  return head.substr(pos + needle.size(), end - pos - needle.size());
}

// ---------------------------------------------------------- test fixture

class ServeTest : public ::testing::Test {
 protected:
  // Starts a server over the running example registered as "fig1".
  void StartServer(ServerOptions options) {
    ModelRegistry registry;
    ASSERT_TRUE(registry.Insert("fig1", workload::Figure1Sequence()).ok());
    server_ = std::make_unique<HttpServer>(std::move(registry),
                                           std::move(options));
    Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st;
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::string QueryBody() {
    return io::FormatTransducer(workload::Figure2Transducer());
  }

  // The expected answer lines of a ranked stream, computed through the
  // same engine + serializer path the one-shot evaluator uses. Comparing
  // the HTTP body against this IS the byte-identity check: tms_cli's
  // results array is built from the same AppendAnswerJson calls.
  std::vector<std::string> ExpectedRankedLines(int k) {
    markov::MarkovSequence mu = workload::Figure1Sequence();
    transducer::Transducer t = workload::Figure2Transducer();
    auto stream =
        query::MakeEnumerator(query::EnumeratorKind::kEmax, mu, t);
    EXPECT_TRUE(stream.ok());
    std::vector<std::string> lines;
    for (int i = 0; i < k; ++i) {
      auto answer = (*stream)->Next();
      if (!answer.has_value()) break;
      auto conf = query::Confidence(mu, t, answer->output);
      EXPECT_TRUE(conf.ok());
      std::string line;
      AppendAnswerJson(FormatStr(t.output_alphabet(), answer->output),
                       "emax", answer->score, *conf, &line);
      lines.push_back(line);
    }
    return lines;
  }

  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

// ----------------------------------------------------------- basic plane

TEST_F(ServeTest, HealthzModelsAndUnknownRoutes) {
  StartServer(ServerOptions{});
  auto health = ParseResponse(Get(port_, "/healthz"));
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->code, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto models = ParseResponse(Get(port_, "/models"));
  ASSERT_TRUE(models.has_value());
  EXPECT_EQ(models->code, 200);
  EXPECT_EQ(models->body, "{\"models\":[\"fig1\"]}\n");

  auto missing = ParseResponse(Get(port_, "/nope"));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->code, 404);

  auto wrong_method = ParseResponse(Post(port_, "/healthz", ""));
  ASSERT_TRUE(wrong_method.has_value());
  EXPECT_EQ(wrong_method->code, 405);

  auto no_model = ParseResponse(Post(port_, "/query/ghost", QueryBody()));
  ASSERT_TRUE(no_model.has_value());
  EXPECT_EQ(no_model->code, 404);
}

TEST_F(ServeTest, MetricsExposesPrometheusText) {
  StartServer(ServerOptions{});
  // Run one query first so engine counters exist.
  ASSERT_TRUE(
      ParseResponse(Post(port_, "/query/fig1?k=1", QueryBody())).has_value());
  auto metrics = ParseResponse(Get(port_, "/metrics"));
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->code, 200);
  EXPECT_NE(metrics->head.find("text/plain; version=0.0.4"),
            std::string::npos);
#if TMS_OBS_ACTIVE
  EXPECT_NE(metrics->body.find("# TYPE tms_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tms_serve_queries"), std::string::npos);
#endif  // the exposition is empty when obs is compiled out
}

// -------------------------------------------------- streaming + identity

TEST_F(ServeTest, RankedStreamMatchesEvaluatorBytes) {
  StartServer(ServerOptions{});
  auto response = ParseResponse(Post(port_, "/query/fig1?k=3", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  EXPECT_NE(response->head.find("application/x-ndjson"), std::string::npos);

  std::vector<std::string> lines = Lines(response->body);
  std::vector<std::string> expected = ExpectedRankedLines(3);
  ASSERT_EQ(lines.size(), expected.size() + 1);  // answers + footer
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(lines[i], expected[i]) << "answer line " << i;
  }
  const std::string& footer = lines.back();
  EXPECT_NE(footer.find("\"done\":true"), std::string::npos);
  EXPECT_NE(footer.find("\"reason\":\"NONE\""), std::string::npos);
  EXPECT_NE(footer.find("\"truncated\":false"), std::string::npos);
}

TEST_F(ServeTest, EnumModeStreamsPlainAnswers) {
  StartServer(ServerOptions{});
  auto response = ParseResponse(
      Post(port_, "/query/fig1?mode=enum&k=5", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  std::vector<std::string> lines = Lines(response->body);
  ASSERT_GE(lines.size(), 2u);
  // Every answer line is one JSON string; the footer closes the stream.
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '"');
    EXPECT_EQ(lines[i].back(), '"');
  }
  EXPECT_NE(lines.back().find("\"done\":true"), std::string::npos);
}

TEST_F(ServeTest, SProjectorQueryStreamsImaxLines) {
  StartServer(ServerOptions{});
  const std::string body =
      "s-projector\n"
      "alphabet r1a r1b r2a r2b la lb\n"
      "prefix . *\n"
      "pattern ( la | lb ) [^ r2a r2b ] *\n"
      "suffix ( r2a | r2b ) . *\n"
      "end\n";
  auto response = ParseResponse(Post(port_, "/query/fig1?k=2", body));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  std::vector<std::string> lines = Lines(response->body);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"imax\":"), std::string::npos);
  EXPECT_NE(lines.back().find("\"done\":true"), std::string::npos);
}

TEST_F(ServeTest, BadRequestsGet400) {
  StartServer(ServerOptions{});
  // Garbage numeric parameter.
  auto bad_k =
      ParseResponse(Post(port_, "/query/fig1?k=3x", QueryBody()));
  ASSERT_TRUE(bad_k.has_value());
  EXPECT_EQ(bad_k->code, 400);
  // Unknown parameter.
  auto unknown =
      ParseResponse(Post(port_, "/query/fig1?frobnicate=1", QueryBody()));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->code, 400);
  // Body that is not a query.
  auto bad_body = ParseResponse(Post(port_, "/query/fig1", "not a query"));
  ASSERT_TRUE(bad_body.has_value());
  EXPECT_EQ(bad_body->code, 400);
  // A model file is a valid format but not a query.
  auto model_body = ParseResponse(Post(
      port_, "/query/fig1",
      io::FormatMarkovSequence(workload::Figure1Sequence())));
  ASSERT_TRUE(model_body.has_value());
  EXPECT_EQ(model_body->code, 400);
}

// ------------------------------------------------- truncation stop reasons

TEST_F(ServeTest, MaxAnswersTruncatesToExactPrefix) {
  StartServer(ServerOptions{});
  auto full = ParseResponse(Post(port_, "/query/fig1?k=3", QueryBody()));
  auto truncated = ParseResponse(
      Post(port_, "/query/fig1?k=3&max_answers=1", QueryBody()));
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(truncated.has_value());
  EXPECT_EQ(truncated->code, 200);
  std::vector<std::string> full_lines = Lines(full->body);
  std::vector<std::string> short_lines = Lines(truncated->body);
  ASSERT_EQ(short_lines.size(), 2u);  // one answer + footer
  // The truncated stream is an exact byte prefix of the full stream.
  EXPECT_EQ(short_lines[0], full_lines[0]);
  EXPECT_NE(short_lines[1].find("\"reason\":\"ANSWER_CAP\""),
            std::string::npos);
  EXPECT_NE(short_lines[1].find("\"status\":\"OK\""), std::string::npos);
  EXPECT_NE(short_lines[1].find("\"truncated\":true"), std::string::npos);
}

TEST_F(ServeTest, ExpiredDeadlineReportsDeadlineStop) {
  StartServer(ServerOptions{});
  auto response = ParseResponse(
      Post(port_, "/query/fig1?deadline_ms=0", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  std::vector<std::string> lines = Lines(response->body);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines.back().find("\"reason\":\"DEADLINE\""),
            std::string::npos);
  EXPECT_NE(lines.back().find("\"status\":\"DEADLINE_EXCEEDED\""),
            std::string::npos);
}

TEST_F(ServeTest, ExhaustedBudgetReportsBudgetStop) {
  StartServer(ServerOptions{});
  auto response =
      ParseResponse(Post(port_, "/query/fig1?budget=1", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  std::vector<std::string> lines = Lines(response->body);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines.back().find("\"reason\":\"BUDGET\""), std::string::npos);
}

// ----------------------------------------------------------- concurrency

class ServeConcurrencyTest : public ServeTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(ServeConcurrencyTest, ConcurrentStreamsAreIdenticalAndScoped) {
  ServerOptions options;
  options.threads = GetParam();
  options.max_inflight = 16;
  StartServer(options);
  const std::string body = QueryBody();

  // Sequential baseline at this thread count.
  auto baseline = ParseResponse(Post(port_, "/query/fig1?k=3", body));
  ASSERT_TRUE(baseline.has_value());
  const std::vector<std::string> expected = Lines(baseline->body);
  ASSERT_EQ(expected.size(), ExpectedRankedLines(3).size() + 1);

  // 8 concurrent clients, same query.
  constexpr int kClients = 8;
  std::vector<std::future<std::string>> futures;
  futures.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      return Post(port_, "/query/fig1?k=3", body);
    }));
  }
  std::set<std::string> query_ids;
  for (auto& f : futures) {
    auto response = ParseResponse(f.get());
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, 200);
    // Byte-identical answer lines regardless of interleaving.
    std::vector<std::string> lines = Lines(response->body);
    ASSERT_EQ(lines.size(), expected.size());
    for (size_t i = 0; i + 1 < lines.size(); ++i) {
      EXPECT_EQ(lines[i], expected[i]);
    }
#if TMS_OBS_ACTIVE
    // Each request ran under its own QueryScope. (With obs compiled out
    // there are no scopes, so every id collapses to the same value.)
    const std::string id = HeaderValue(response->head, "X-Query-Id");
    ASSERT_FALSE(id.empty());
    query_ids.insert(id);
#endif
  }
#if TMS_OBS_ACTIVE
  EXPECT_EQ(query_ids.size(), static_cast<size_t>(kClients));
#endif
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeConcurrencyTest,
                         ::testing::Values(1, 2, 8));

// ------------------------------------------------------------- admission

TEST_F(ServeTest, DrainModeRefusesEveryQuery) {
  ServerOptions options;
  options.max_inflight = 0;
  StartServer(options);
  auto response = ParseResponse(Post(port_, "/query/fig1", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 429);
  EXPECT_EQ(HeaderValue(response->head, "Retry-After"), "1");
  // Non-query endpoints stay available.
  auto health = ParseResponse(Get(port_, "/healthz"));
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->code, 200);
}

TEST_F(ServeTest, OverLimitQueryGets429WhileSlotIsHeld) {
  ServerOptions options;
  options.max_inflight = 1;
  StartServer(options);
  const std::string body = QueryBody();

  // Client A sends the head and *part* of the body, then stalls. The gate
  // is entered after the head, so A deterministically holds the only
  // slot while B's query arrives.
  int holder = Connect(port_);
  ASSERT_GE(holder, 0);
  const std::string head =
      "POST /query/fig1 HTTP/1.1\r\nHost: t\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n";
  ASSERT_EQ(send(holder, head.data(), head.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(head.size()));
  ASSERT_EQ(send(holder, body.data(), 4, MSG_NOSIGNAL), 4);

  // Wait until A actually occupies the slot (ReadBody runs after the
  // gate): poll B until it sees 429.
  auto rejected = ParseResponse(Post(port_, "/query/fig1?k=1", body));
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (rejected.has_value() && rejected->code == 429) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    rejected = ParseResponse(Post(port_, "/query/fig1?k=1", body));
  }
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->code, 429);

  // A completes its body and still gets its full stream: rejection of B
  // never disturbed the admitted query.
  ASSERT_EQ(send(holder, body.data() + 4, body.size() - 4, MSG_NOSIGNAL),
            static_cast<ssize_t>(body.size() - 4));
  auto completed = ParseResponse(ReadToEof(holder));
  close(holder);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->code, 200);
  EXPECT_NE(completed->body.find("\"done\":true"), std::string::npos);

  // Slot released: the next query is admitted.
  auto next = ParseResponse(Post(port_, "/query/fig1?k=1", body));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->code, 200);
}

// ---------------------------------------------------------------- drain

TEST_F(ServeTest, CancelTokenTruncatesStreamWithCancelledFooter) {
  StartServer(ServerOptions{});
  // Fire the server-wide drain token up front: the next query's
  // RunContext observes it at the first answer boundary, so the stream is
  // a well-formed empty prefix + CANCELLED footer.
  server_->cancel_token().Cancel();
  auto response = ParseResponse(Post(port_, "/query/fig1", QueryBody()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->code, 200);
  std::vector<std::string> lines = Lines(response->body);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"reason\":\"CANCELLED\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"answers\":0"), std::string::npos);
}

TEST_F(ServeTest, ShutdownJoinsParkedConnections) {
  ServerOptions options;
  options.limits.poll_interval_ms = 5;
  StartServer(options);

  // Park two connections: one that never sends anything, one stalled
  // mid-body. Both sit in the reader's poll loop.
  int idle = Connect(port_);
  ASSERT_GE(idle, 0);
  int stalled = Connect(port_);
  ASSERT_GE(stalled, 0);
  const std::string partial =
      "POST /query/fig1 HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nabc";
  ASSERT_EQ(send(stalled, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  // Give the server a moment to accept and park both.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Shutdown must join the accept thread AND both parked connection
  // threads promptly — a hang here is the regression this guards.
  auto done = std::async(std::launch::async, [&] { server_->Shutdown(); });
  ASSERT_EQ(done.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);

  // Parked clients observe the close.
  EXPECT_EQ(ReadToEof(idle), "");
  close(idle);
  close(stalled);

  // The listener is gone.
  int after = Connect(port_);
  if (after >= 0) close(after);
  // (Connect may transiently succeed if the port is reused; the real
  // assertion is that Shutdown returned and joined above.)
}


// ------------------------------------------------------ precompiled plane

// Writes `text` to a fresh file under the gtest temp dir and returns its
// path.
std::string WriteTempFile(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().counter(name).value();
}

// Counter deltas are only observable when obs is compiled in; disabled
// builds (-DTMS_OBS=OFF) still exercise the functional plane below
// (artifact files on disk, fallback machines) and skip the metric check.
void ExpectCounterDelta(const char* name, int64_t before, int64_t delta) {
#if TMS_OBS_ACTIVE
  EXPECT_EQ(CounterValue(name), before + delta) << name;
#else
  (void)name;
  (void)before;
  (void)delta;
#endif
}

class ServePrecompileTest : public ServeTest {
 protected:
  void SetUp() override { obs::SetEnabled(true); }

  // A fig1-alphabet query file (the running example's transducer).
  std::string WriteQueryFile(const std::string& name) {
    return WriteTempFile(name,
                         io::FormatTransducer(workload::Figure2Transducer()));
  }

  ModelRegistry MakeRegistry() {
    ModelRegistry registry;
    EXPECT_TRUE(registry.Insert("fig1", workload::Figure1Sequence()).ok());
    return registry;
  }
};

TEST_F(ServePrecompileTest, RegistryPrecompilesAndPersistsArtifact) {
  const std::string query_path = WriteQueryFile("precompile_basic.tms");
  const std::string artifact_path = query_path + ".opt";
  std::remove(artifact_path.c_str());

  ModelRegistry registry = MakeRegistry();
  // kOff registers the machine as parsed: no pass, no artifact.
  ASSERT_TRUE(registry
                  .Precompile("fig1", "raw", query_path,
                              optimize::Level::kOff)
                  .ok());
  EXPECT_FALSE(std::ifstream(artifact_path).good());
  const transducer::Transducer* raw = registry.FindPrecompiled("fig1", "raw");
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->num_states(),
            workload::Figure2Transducer().num_states());

  // kOn runs the pass and persists the artifact.
  const int64_t saved_before = CounterValue("optimize.artifact_saved");
  ASSERT_TRUE(registry
                  .Precompile("fig1", "opt", query_path, optimize::Level::kOn)
                  .ok());
  ExpectCounterDelta("optimize.artifact_saved", saved_before, 1);
  const transducer::Transducer* opt = registry.FindPrecompiled("fig1", "opt");
  ASSERT_NE(opt, nullptr);
  EXPECT_LE(opt->num_states(), raw->num_states());

  // A second cold start loads the persisted artifact instead of
  // re-optimizing.
  const int64_t loaded_before = CounterValue("optimize.artifact_loaded");
  ModelRegistry cold = MakeRegistry();
  ASSERT_TRUE(
      cold.Precompile("fig1", "opt", query_path, optimize::Level::kOn).ok());
  ExpectCounterDelta("optimize.artifact_loaded", loaded_before, 1);
  const transducer::Transducer* reloaded = cold.FindPrecompiled("fig1", "opt");
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(io::FormatTransducer(*reloaded), io::FormatTransducer(*opt));

  // The error plane: unknown model, duplicate name, empty name.
  EXPECT_FALSE(registry
                   .Precompile("ghost", "q", query_path, optimize::Level::kOn)
                   .ok());
  EXPECT_FALSE(
      registry.Precompile("fig1", "opt", query_path, optimize::Level::kOn)
          .ok());
  EXPECT_FALSE(
      registry.Precompile("fig1", "", query_path, optimize::Level::kOn).ok());
  EXPECT_EQ(registry.PrecompiledNames(),
            (std::vector<std::string>{"fig1:opt", "fig1:raw"}));
}

TEST_F(ServePrecompileTest, CorruptArtifactRejectedLoudlyWithFallback) {
  const std::string query_path = WriteQueryFile("precompile_corrupt.tms");
  const std::string artifact_path = query_path + ".opt";

  // Seed a corrupted artifact: right magic, wrong everything else.
  WriteTempFile("precompile_corrupt.tms.opt",
                "# tms-opt-artifact v1\n# source-fp 0000000000000000\n");

  const int64_t rejected_before = CounterValue("optimize.artifact_rejected");
  ModelRegistry registry = MakeRegistry();
  ASSERT_TRUE(
      registry.Precompile("fig1", "q", query_path, optimize::Level::kOn).ok());
  // The rejection was loud...
  ExpectCounterDelta("optimize.artifact_rejected", rejected_before, 1);
  // ...the fallback compiled on the fly to the same machine the pass
  // produces...
  const transducer::Transducer* stored = registry.FindPrecompiled("fig1", "q");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(io::FormatTransducer(*stored),
            io::FormatTransducer(
                optimize::MinimizeTransducer(workload::Figure2Transducer())));
  // ...and the bad file was overwritten with a valid artifact.
  auto reloaded = optimize::LoadArtifactFile(artifact_path,
                                             workload::Figure2Transducer());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(io::FormatTransducer(*reloaded), io::FormatTransducer(*stored));

  // An artifact for a DIFFERENT source transducer is rejected the same
  // loud way (stale fingerprint), not silently served.
  transducer::Transducer other(workload::Figure2Transducer());
  other.AddState();
  auto stale = optimize::LoadArtifactFile(artifact_path, other);
  EXPECT_FALSE(stale.ok());
}

TEST_F(ServePrecompileTest, PrecompiledRequestStreamsIdenticalBytes) {
  const std::string query_path = WriteQueryFile("precompile_serve.tms");
  std::remove((query_path + ".opt").c_str());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Insert("fig1", workload::Figure1Sequence()).ok());
  ASSERT_TRUE(
      registry.Precompile("fig1", "top", query_path, optimize::Level::kOn)
          .ok());
  server_ = std::make_unique<HttpServer>(std::move(registry), ServerOptions{});
  ASSERT_TRUE(server_->Start().ok());
  port_ = server_->port();

  // The stored stream is byte-identical to the same query sent by body —
  // the optimization knob must not move a single byte.
  auto by_body = ParseResponse(Post(port_, "/query/fig1?k=3", QueryBody()));
  auto by_name =
      ParseResponse(Post(port_, "/query/fig1?k=3&precompiled=top", ""));
  ASSERT_TRUE(by_body.has_value());
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(by_name->code, 200);
  EXPECT_EQ(by_name->body, by_body->body);

  // Non-empty bodies are a 400 (the name IS the query)...
  auto with_body = ParseResponse(
      Post(port_, "/query/fig1?k=3&precompiled=top", QueryBody()));
  ASSERT_TRUE(with_body.has_value());
  EXPECT_EQ(with_body->code, 400);
  EXPECT_NE(with_body->body.find("empty body"), std::string::npos);

  // ...and unknown names are a 404.
  auto unknown =
      ParseResponse(Post(port_, "/query/fig1?k=3&precompiled=ghost", ""));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->code, 404);

  // A bad ?optimize= value on the ordinary plane is a 400 with the knob
  // named.
  auto bad_level =
      ParseResponse(Post(port_, "/query/fig1?optimize=max", QueryBody()));
  ASSERT_TRUE(bad_level.has_value());
  EXPECT_EQ(bad_level->code, 400);
  EXPECT_NE(bad_level->body.find("optimize"), std::string::npos);

  // Explicit ?optimize=off|on both reproduce the default stream.
  for (const char* level : {"off", "on"}) {
    auto swept = ParseResponse(Post(
        port_, std::string("/query/fig1?k=3&optimize=") + level, QueryBody()));
    ASSERT_TRUE(swept.has_value()) << level;
    EXPECT_EQ(swept->body, by_body->body) << level;
  }
}

}  // namespace
}  // namespace tms::serve
