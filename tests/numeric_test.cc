#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "numeric/bigint.h"
#include "numeric/log_prob.h"
#include "numeric/rational.h"

namespace tms::numeric {
namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-17).ToString(), "-17");
  EXPECT_EQ(BigInt(1234567890123456789LL).ToString(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromString) {
  EXPECT_EQ(BigInt::FromString("0")->ToString(), "0");
  EXPECT_EQ(BigInt::FromString("-12345")->ToString(), "-12345");
  EXPECT_EQ(
      BigInt::FromString("340282366920938463463374607431768211456")->ToString(),
      "340282366920938463463374607431768211456");  // 2^128
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("12x3").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
}

TEST(BigIntTest, ArithmeticMatchesInt64) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    int64_t a = rng.UniformInt(-1000000, 1000000);
    int64_t b = rng.UniformInt(-1000000, 1000000);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToString(), std::to_string(a + b));
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToString(), std::to_string(a - b));
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToString(), std::to_string(a * b));
    if (b != 0) {
      EXPECT_EQ((BigInt(a) / BigInt(b)).ToString(), std::to_string(a / b));
      EXPECT_EQ((BigInt(a) % BigInt(b)).ToString(), std::to_string(a % b));
    }
  }
}

TEST(BigIntTest, LargeMultiplicationAndDivisionRoundTrip) {
  BigInt a = *BigInt::FromString("123456789012345678901234567890");
  BigInt b = *BigInt::FromString("987654321098765432109876543210");
  BigInt product = a * b;
  EXPECT_EQ(product / a, b);
  EXPECT_EQ(product / b, a);
  EXPECT_TRUE((product % a).IsZero());
  EXPECT_EQ(product + BigInt(17) - product, BigInt(17));
}

TEST(BigIntTest, PowersOfTwoBitLength) {
  BigInt v(1);
  const BigInt two(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(v.BitLength(), static_cast<size_t>(i + 1));
    v *= two;
  }
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(100), BigInt(99));
  EXPECT_EQ(BigInt(0), BigInt(0));
  EXPECT_LE(BigInt(7), BigInt(7));
  BigInt big = *BigInt::FromString("99999999999999999999999999");
  EXPECT_GT(big, BigInt(INT64_MAX));
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000000).ToDouble(), 1e6);
  EXPECT_DOUBLE_EQ(BigInt(-250).ToDouble(), -250.0);
  BigInt huge = *BigInt::FromString("10000000000000000000000");  // 1e22
  EXPECT_NEAR(huge.ToDouble(), 1e22, 1e7);
}

TEST(RationalTest, NormalizationToLowestTerms) {
  Rational r(6, 8);
  EXPECT_EQ(r.ToString(), "3/4");
  EXPECT_EQ(Rational(-6, 8).ToString(), "-3/4");
  EXPECT_EQ(Rational(6, -8).ToString(), "-3/4");
  EXPECT_EQ(Rational(0, 5).ToString(), "0");
  EXPECT_EQ(Rational(10, 5).ToString(), "2");
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, ProbabilitySumsExactlyToOne) {
  // The failure mode exact arithmetic exists to avoid: 10 × 0.1 == 1.
  Rational tenth(1, 10);
  Rational sum;
  for (int i = 0; i < 10; ++i) sum += tenth;
  EXPECT_EQ(sum, Rational(1));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(7, 9), Rational(7, 9));
}

TEST(RationalTest, FromDoubleIsExact) {
  EXPECT_EQ(Rational::FromDouble(0.5).ToString(), "1/2");
  EXPECT_EQ(Rational::FromDouble(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::FromDouble(3.0), Rational(3));
  // 0.1 is not exactly 1/10 in binary; FromDouble must return the true
  // dyadic value, which converts back to exactly the same double.
  EXPECT_DOUBLE_EQ(Rational::FromDouble(0.1).ToDouble(), 0.1);
  EXPECT_NE(Rational::FromDouble(0.1), Rational(1, 10));
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::FromString("3/9")->ToString(), "1/3");
  EXPECT_EQ(Rational::FromString("-7")->ToString(), "-7");
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 1.0 / 3.0, 1e-15);
}

TEST(LogProbTest, ZeroAndOne) {
  EXPECT_TRUE(LogProb::Zero().IsZero());
  EXPECT_DOUBLE_EQ(LogProb::One().ToLinear(), 1.0);
  EXPECT_TRUE(LogProb::FromLinear(0.0).IsZero());
}

TEST(LogProbTest, MultiplicationMatchesLinear) {
  LogProb a = LogProb::FromLinear(0.3);
  LogProb b = LogProb::FromLinear(0.4);
  EXPECT_NEAR((a * b).ToLinear(), 0.12, 1e-12);
  EXPECT_TRUE((a * LogProb::Zero()).IsZero());
}

TEST(LogProbTest, AdditionIsLogSumExp) {
  LogProb a = LogProb::FromLinear(0.3);
  LogProb b = LogProb::FromLinear(0.4);
  EXPECT_NEAR((a + b).ToLinear(), 0.7, 1e-12);
  EXPECT_NEAR((a + LogProb::Zero()).ToLinear(), 0.3, 1e-12);
}

TEST(LogProbTest, NoUnderflowOnLongProducts) {
  // 0.5^10000 underflows double; the log domain keeps the exponent.
  LogProb p = LogProb::One();
  LogProb half = LogProb::FromLinear(0.5);
  for (int i = 0; i < 10000; ++i) p *= half;
  EXPECT_FALSE(p.IsZero());
  EXPECT_NEAR(p.log(), 10000 * std::log(0.5), 1e-6);
  LogProb q = p;
  EXPECT_FALSE((p * q).IsZero());
  EXPECT_LT(p * q, p);
}

TEST(LogProbTest, Ordering) {
  EXPECT_LT(LogProb::FromLinear(0.1), LogProb::FromLinear(0.2));
  EXPECT_LT(LogProb::Zero(), LogProb::FromLinear(1e-300));
}

TEST(LogProbTest, ZeroDividedByAnythingIsZero) {
  // Without the zero-numerator guard, Zero / Zero evaluates
  // -inf - -inf = NaN and the result compares unequal to everything.
  EXPECT_TRUE((LogProb::Zero() / LogProb::FromLinear(0.5)).IsZero());
  EXPECT_TRUE((LogProb::Zero() / LogProb::Zero()).IsZero());
  EXPECT_FALSE((LogProb::Zero() / LogProb::Zero()).IsNaN());
  EXPECT_NEAR((LogProb::FromLinear(0.3) / LogProb::FromLinear(0.5)).ToLinear(),
              0.6, 1e-12);
}

TEST(LogProbTest, InfiniteWeightsSumToInfinity) {
  // Unnormalized intermediates can carry log = +inf; their sum must stay
  // +inf rather than turning into exp(inf - inf) = NaN.
  LogProb inf = LogProb::FromLog(std::numeric_limits<double>::infinity());
  EXPECT_FALSE((inf + inf).IsNaN());
  EXPECT_TRUE(std::isinf((inf + inf).log()));
  EXPECT_GT(inf + inf, LogProb::One());
  EXPECT_TRUE(std::isinf((inf + LogProb::FromLinear(0.5)).log()));
  EXPECT_TRUE(std::isinf((LogProb::FromLinear(0.5) + inf).log()));
}

TEST(LogProbTest, DenormalLinearInputsStayOrdered) {
  // Denormal probabilities are representable; log() maps them deep
  // negative but finite, and ordering survives the round trip.
  const double denorm = 5e-324;  // smallest positive double
  LogProb d = LogProb::FromLinear(denorm);
  EXPECT_FALSE(d.IsZero());
  EXPECT_FALSE(d.IsNaN());
  EXPECT_LT(LogProb::Zero(), d);
  EXPECT_LT(d, LogProb::FromLinear(1e-300));
  // Sum of two denormal-backed values is finite and at least the max.
  EXPECT_GE(d + d, d);
  EXPECT_FALSE((d + d).IsNaN());
}

}  // namespace
}  // namespace tms::numeric
