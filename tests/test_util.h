// Shared test helpers: possible-world brute forcing (the ground truth all
// polynomial algorithms are validated against) and common assertions.

#ifndef TMS_TESTS_TEST_UTIL_H_
#define TMS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "markov/markov_sequence.h"
#include "markov/world_iter.h"
#include "projector/sprojector.h"
#include "strings/str.h"
#include "transducer/transducer.h"

namespace tms::testing {

/// Seed for a randomized suite: `fallback` unless the TMS_TEST_SEED
/// environment variable overrides it. The chosen seed is printed once per
/// call so any failure log names the exact replay command — wrap suite
/// bodies in SCOPED_TRACE(SeedTrace(seed)) so assertion failures carry it
/// too. Replay: TMS_TEST_SEED=<seed> ./the_test.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("TMS_TEST_SEED");
  uint64_t seed = fallback;
  if (env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::printf("[   SEED   ] TMS_TEST_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// Message for SCOPED_TRACE so every assertion failure in a randomized
/// suite states how to reproduce it.
inline std::string SeedTrace(uint64_t seed) {
  return "replay with TMS_TEST_SEED=" + std::to_string(seed);
}

/// Ground-truth evaluation by exhausting all possible worlds: the map from
/// every answer to its confidence.
inline std::map<Str, double> BruteForceAnswers(
    const markov::MarkovSequence& mu, const transducer::Transducer& t) {
  std::map<Str, double> out;
  markov::ForEachWorld(mu, [&](const Str& world, double p) {
    for (const Str& o : t.TransduceAll(world)) out[o] += p;
  });
  return out;
}

/// Ground-truth confidence of one answer.
inline double BruteForceConfidence(const markov::MarkovSequence& mu,
                                   const transducer::Transducer& t,
                                   const Str& o) {
  double total = 0;
  markov::ForEachWorld(mu, [&](const Str& world, double p) {
    if (t.Transduces(world, o)) total += p;
  });
  return total;
}

/// Ground-truth E_max of one answer.
inline double BruteForceEmax(const markov::MarkovSequence& mu,
                             const transducer::Transducer& t, const Str& o) {
  double best = 0;
  markov::ForEachWorld(mu, [&](const Str& world, double p) {
    if (p > best && t.Transduces(world, o)) best = p;
  });
  return best;
}

/// Ground-truth indexed s-projector answers with confidences.
inline std::map<std::pair<Str, int>, double> BruteForceIndexedAnswers(
    const markov::MarkovSequence& mu, const projector::SProjector& p) {
  std::map<std::pair<Str, int>, double> out;
  const int n = mu.length();
  markov::ForEachWorld(mu, [&](const Str& world, double prob) {
    for (int i = 1; i <= n + 1; ++i) {
      for (int len = 0; i + len - 1 <= n; ++len) {
        if (len == 0 && i > n + 1) continue;
        if (len > 0 && i > n) break;
        Str o(world.begin() + (i - 1), world.begin() + (i - 1 + len));
        if (p.MatchesIndexed(world, projector::IndexedAnswer{o, i})) {
          out[{o, i}] += prob;
        }
      }
    }
  });
  return out;
}

/// Ground-truth (non-indexed) s-projector answer map.
inline std::map<Str, double> BruteForceSProjectorAnswers(
    const markov::MarkovSequence& mu, const projector::SProjector& p) {
  std::map<Str, double> out;
  const int n = mu.length();
  markov::ForEachWorld(mu, [&](const Str& world, double prob) {
    // Collect the distinct outputs of this world, then add its mass once
    // per output.
    std::map<Str, bool> outputs;
    for (int i = 1; i <= n + 1; ++i) {
      for (int len = 0; i + len - 1 <= n; ++len) {
        if (len > 0 && i > n) break;
        Str o(world.begin() + (i - 1), world.begin() + (i - 1 + len));
        if (p.MatchesIndexed(world, projector::IndexedAnswer{o, i})) {
          outputs[o] = true;
        }
      }
    }
    for (const auto& [o, unused] : outputs) out[o] += prob;
  });
  return out;
}

}  // namespace tms::testing

#endif  // TMS_TESTS_TEST_UTIL_H_
