// Straggler and fault drills for the sharded batch path (docs/DISTRIBUTED.md
// + docs/ROBUSTNESS.md): a shard that dies before evaluating
// (`dist.pre_shard`) or mid-stream (`dist.mid_stream`) contributes a clean
// prefix, the survivors' rows keep their exact global order, and the
// coverage vector reports precisely what was lost. Plus the
// TMS_FAULT_INJECT spec parser (exec::FaultInjector::ArmFromSpec) that
// tools/dist_smoke.sh drives end to end.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/client.h"
#include "dist/merge_stream.h"
#include "dist/shard_plan.h"
#include "dist/sharded_batch.h"
#include "exec/fault.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

namespace tms {
namespace {

using testing::SeedTrace;
using testing::TestSeed;

class DistFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec::FaultInjector::Global().Reset();
    Rng rng(TestSeed(20260812));
    // RandomMarkovSequence interns its nodes under the "n" prefix; the
    // collection's alphabet must match or Insert rejects the sequence.
    alphabet_ = workload::MakeSymbols(4, "n");
    collection_ = db::SequenceCollection(alphabet_);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(collection_
                      .Insert("seq" + std::to_string(i),
                              workload::RandomMarkovSequence(4, 4, 3, rng))
                      .ok());
    }
    // The identity transducer guarantees every sequence a full top-k
    // stream (one answer per world), so the nth mid-stream hit always has
    // an entry to kill — no seed can make the drill vacuous.
    query_ = transducer::Transducer(alphabet_, alphabet_, /*num_states=*/1);
    query_.SetInitial(0);
    query_.SetAccepting(0);
    for (Symbol s = 0; s < static_cast<Symbol>(alphabet_.size()); ++s) {
      ASSERT_TRUE(query_.AddTransition(0, s, 0, Str{s}).ok());
    }
  }

  void TearDown() override { exec::FaultInjector::Global().Reset(); }

  std::vector<dist::RankedRow> Reference(int k) {
    db::BatchEvaluator::Options options;
    auto batch = db::BatchEvaluator::Create(&collection_, &query_, options);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    return dist::RankedReferenceRows(batch->EvaluateAll(k));
  }

  static std::vector<std::pair<std::string, double>> Flatten(
      const std::vector<dist::RankedRow>& rows) {
    std::vector<std::pair<std::string, double>> out;
    for (const dist::RankedRow& r : rows) {
      out.emplace_back(r.key, r.answer.emax);
    }
    return out;
  }

  Alphabet alphabet_;
  db::SequenceCollection collection_{Alphabet()};
  transducer::Transducer query_{Alphabet(), Alphabet()};
};

TEST_F(DistFaultTest, PreShardFaultLosesExactlyThatShard) {
  const int k = 3;
  const std::vector<dist::RankedRow> reference = Reference(k);
  ASSERT_FALSE(reference.empty());
  const std::vector<dist::ShardRange> plan =
      dist::PlanShards(collection_.Keys(), 3);

  // The first shard to evaluate dies before producing anything.
  exec::FaultInjector::Global().ScheduleFailure("dist.pre_shard",
                                                /*nth_hit=*/1);
  dist::ShardedBatchOptions options;
  options.shards = 3;
  auto sharded = dist::EvaluateSharded(collection_, query_, k, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_FALSE(sharded->complete());

  ASSERT_EQ(sharded->coverage.size(), 3u);
  EXPECT_TRUE(sharded->coverage[0].failed);
  EXPECT_FALSE(sharded->coverage[0].status.ok());
  EXPECT_EQ(sharded->coverage[0].answers, 0);
  EXPECT_FALSE(sharded->coverage[1].failed);
  EXPECT_FALSE(sharded->coverage[2].failed);

  // Expected: the reference stream minus shard 0's keys, order untouched.
  std::vector<dist::RankedRow> expected;
  for (const dist::RankedRow& row : reference) {
    if (std::find(plan[0].keys.begin(), plan[0].keys.end(), row.key) ==
        plan[0].keys.end()) {
      expected.push_back(row);
    }
  }
  EXPECT_EQ(Flatten(sharded->rows), Flatten(expected));
}

TEST_F(DistFaultTest, MidStreamFaultKeepsPerShardCleanPrefixes) {
  const int k = 3;
  const std::vector<dist::RankedRow> reference = Reference(k);
  const std::vector<dist::ShardRange> plan =
      dist::PlanShards(collection_.Keys(), 2);

  // Per-shard reference streams: the reference restricted to each range.
  std::vector<std::vector<std::pair<std::string, double>>> per_shard(2);
  for (const dist::RankedRow& row : reference) {
    const bool in0 = std::find(plan[0].keys.begin(), plan[0].keys.end(),
                               row.key) != plan[0].keys.end();
    per_shard[in0 ? 0 : 1].emplace_back(row.key, row.answer.emax);
  }

  // Kill one stream a few entries in. Which stream dies depends on merge
  // pull order — the contract under test is the clean-prefix property,
  // not which victim the nth hit lands on.
  exec::FaultInjector::Global().ScheduleFailure("dist.mid_stream",
                                                /*nth_hit=*/4);
  dist::ShardedBatchOptions options;
  options.shards = 2;
  auto sharded = dist::EvaluateSharded(collection_, query_, k, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_FALSE(sharded->complete());

  int failed_shards = 0;
  int64_t merged = 0;
  for (size_t s = 0; s < sharded->coverage.size(); ++s) {
    const dist::ShardCoverage& c = sharded->coverage[s];
    merged += c.answers;
    // Each shard's merged rows are a prefix of its reference stream —
    // the full stream for survivors, a proper one for the victim.
    std::vector<std::pair<std::string, double>> got;
    for (const dist::RankedRow& row : sharded->rows) {
      const bool in_s = std::find(plan[s].keys.begin(), plan[s].keys.end(),
                                  row.key) != plan[s].keys.end();
      if (in_s) got.emplace_back(row.key, row.answer.emax);
    }
    ASSERT_LE(got.size(), per_shard[s].size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), per_shard[s].begin()))
        << "shard " << s << " rows are not a clean prefix";
    if (c.failed) {
      ++failed_shards;
      EXPECT_LT(got.size(), per_shard[s].size());
    } else {
      EXPECT_EQ(got.size(), per_shard[s].size());
    }
    EXPECT_EQ(static_cast<size_t>(c.answers), got.size());
  }
  EXPECT_EQ(failed_shards, 1);
  EXPECT_EQ(merged, static_cast<int64_t>(sharded->rows.size()));

  // The merged stream itself still obeys the global order.
  for (size_t i = 1; i < sharded->rows.size(); ++i) {
    const dist::RankedRow& a = sharded->rows[i - 1];
    const dist::RankedRow& b = sharded->rows[i];
    EXPECT_TRUE(a.answer.emax > b.answer.emax ||
                (a.answer.emax == b.answer.emax && a.key <= b.key))
        << "merged rows out of order at " << i;
  }
}

TEST_F(DistFaultTest, EveryHitFaultKillsEveryShardButNeverCrashes) {
  exec::FaultInjector::Global().ScheduleFailure("dist.pre_shard",
                                                /*nth_hit=*/0);
  dist::ShardedBatchOptions options;
  options.shards = 4;
  auto sharded = dist::EvaluateSharded(collection_, query_, 3, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_TRUE(sharded->rows.empty());
  for (const dist::ShardCoverage& c : sharded->coverage) {
    EXPECT_TRUE(c.failed);
    EXPECT_EQ(c.answers, 0);
  }
}

TEST_F(DistFaultTest, BornFailedRemoteSourceIsAnEmptyCleanPrefix) {
  auto source = std::make_unique<dist::RemoteShardSource>(
      7, Status::Internal("connect refused"));
  EXPECT_FALSE(source->Next().has_value());
  dist::ShardCoverage coverage = source->Coverage();
  EXPECT_EQ(coverage.shard_id, 7);
  EXPECT_TRUE(coverage.failed);
  EXPECT_FALSE(coverage.status.ok());
}

// ---------------------------------------------------------------------------
// The TMS_FAULT_INJECT spec parser.

class ArmFromSpecTest : public ::testing::Test {
 protected:
  void SetUp() override { exec::FaultInjector::Global().Reset(); }
  void TearDown() override { exec::FaultInjector::Global().Reset(); }
};

TEST_F(ArmFromSpecTest, FailClauseFiresAtTheNthHit) {
  ASSERT_TRUE(
      exec::FaultInjector::Global().ArmFromSpec("my.point:fail:2").ok());
  EXPECT_FALSE(TMS_FAULT_POINT("my.point"));
  EXPECT_TRUE(TMS_FAULT_POINT("my.point"));
  EXPECT_FALSE(TMS_FAULT_POINT("my.point"));
}

TEST_F(ArmFromSpecTest, MultipleClausesArmIndependently) {
  ASSERT_TRUE(exec::FaultInjector::Global()
                  .ArmFromSpec("a.point:fail:1;b.point:fail:1")
                  .ok());
  EXPECT_TRUE(TMS_FAULT_POINT("a.point"));
  EXPECT_TRUE(TMS_FAULT_POINT("b.point"));
}

TEST_F(ArmFromSpecTest, DelayClauseParsesAndDoesNotFail) {
  ASSERT_TRUE(
      exec::FaultInjector::Global().ArmFromSpec("d.point:delay1ms:1").ok());
  EXPECT_FALSE(TMS_FAULT_POINT("d.point"));
}

TEST_F(ArmFromSpecTest, MalformedSpecsAreRejected) {
  auto& injector = exec::FaultInjector::Global();
  EXPECT_FALSE(injector.ArmFromSpec("no-colons").ok());
  EXPECT_FALSE(injector.ArmFromSpec("point:fail").ok());
  EXPECT_FALSE(injector.ArmFromSpec("point:explode:1").ok());
  EXPECT_FALSE(injector.ArmFromSpec("point:fail:abc").ok());
  EXPECT_FALSE(injector.ArmFromSpec("point:delayxms:1").ok());
  // Empty specs and empty clauses are no-ops, not errors — a bare or
  // trailing ';' in TMS_FAULT_INJECT must not kill the process.
  EXPECT_TRUE(injector.ArmFromSpec("").ok());
  EXPECT_TRUE(injector.ArmFromSpec("ok.point:fail:1;;").ok());
}

}  // namespace
}  // namespace tms
