#include "common/status.h"

#include <gtest/gtest.h>

namespace tms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TMS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tms
