// Differential equivalence harness for the query-automaton optimization
// pass (src/optimize/, docs/OPTIMIZE.md).
//
// The system's headline guarantee is byte-identical ranked streams at
// every thread count and backend; the optimization knob must preserve it
// EXACTLY. This suite byte-compares optimized-vs-unoptimized answer
// streams across the enumeration engines × {dense,sparse,auto} backends ×
// {1,2,8} threads on randomized instances (TMS_TEST_SEED-replayable), and
// adds the metamorphic properties the pass documents:
//   * PruneTransducer and MinimizeTransducer are idempotent;
//   * pruning/minimization never change the answer set, and minimization
//     preserves per-answer scores within the documented 1e-12 tolerance
//     (pruning is exact — bitwise);
//   * weight pushing preserves every per-path total within 1e-12, leaves
//     all live completion distances at zero, is idempotent, and rejects
//     diverging (positive-cycle) inputs with a Status;
//   * CompositionCache keys the optimization level — a lookup can never
//     return an entry built under the other knob setting (the regression
//     for the cache-key bug this PR fixes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/engine_options.h"
#include "exec/thread_pool.h"
#include "io/text_format.h"
#include "kernels/backend.h"
#include "optimize/level.h"
#include "optimize/transducer_opt.h"
#include "optimize/weight_push.h"
#include "query/engine_factory.h"
#include "query/top_confidence.h"
#include "query/unranked_enum.h"
#include "ranking/prefix_constraint.h"
#include "test_util.h"
#include "transducer/compose.h"
#include "transducer/composition_cache.h"
#include "workload/random_models.h"

namespace tms {
namespace {

using kernels::BackendChoice;
using optimize::Level;

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

// Large-alphabet instance in the sparse regime (kAuto resolves to the CSR
// backend) — the regime the pass must keep friendly to sparse kernels.
Instance SparseInstance(Rng& rng, int n = 6) {
  markov::MarkovSequence mu =
      workload::RandomHomogeneousMarkovSequence(24, n, /*support=*/3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 0.7;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

// Small dense inhomogeneous instance. Low accept_prob and loose density
// make unreachable and dead states likely, so the prune actually fires.
Instance DenseInstance(Rng& rng) {
  const int sigma = static_cast<int>(rng.UniformInt(2, 3));
  const int n = static_cast<int>(rng.UniformInt(2, 4));
  markov::MarkovSequence mu =
      workload::RandomMarkovSequence(sigma, n, /*support=*/sigma, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = static_cast<int>(rng.UniformInt(2, 5));
  opts.density = 1.0;
  opts.max_emission = 2;
  opts.accept_prob = 0.5;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

std::vector<ranking::ScoredAnswer> Drain(query::EnumeratorKind kind,
                                         const Instance& inst, Level level,
                                         BackendChoice backend,
                                         exec::ThreadPool* pool = nullptr,
                                         int guard = 40) {
  exec::EngineOptions options;
  options.pool = pool;
  options.backend = backend;
  options.optimize = level;
  auto it = query::MakeEnumerator(kind, inst.mu, inst.t, options);
  if (!it.ok()) {
    ADD_FAILURE() << "MakeEnumerator: " << it.status();
    return {};
  }
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < guard; ++i) {
    auto answer = (*it)->Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

// Byte-identical streams: same length, same outputs, bitwise-equal scores,
// same order. No tolerance — the prune path promises exactness.
void ExpectSameStream(const std::vector<ranking::ScoredAnswer>& got,
                      const std::vector<ranking::ScoredAnswer>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].output, want[i].output) << what << " answer " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " answer " << i;
  }
}

// The full differential sweep for one engine kind: the kOff/dense/1-thread
// stream is the reference; every (level, backend, threads) combination
// must reproduce it byte for byte.
void SweepEngine(query::EnumeratorKind kind, const Instance& inst,
                 const std::string& regime) {
  const std::vector<ranking::ScoredAnswer> reference =
      Drain(kind, inst, Level::kOff, BackendChoice::kDense);
  for (Level level : {Level::kAuto, Level::kOn}) {
    for (BackendChoice backend :
         {BackendChoice::kDense, BackendChoice::kSparse, BackendChoice::kAuto}) {
      for (int threads : {1, 2, 8}) {
        std::optional<exec::ThreadPool> pool;
        if (threads > 1) pool.emplace(threads - 1);
        std::vector<ranking::ScoredAnswer> stream =
            Drain(kind, inst, level, backend, pool ? &*pool : nullptr);
        ExpectSameStream(
            stream, reference,
            regime + " engine=" + query::EnumeratorKindName(kind) +
                " optimize=" + optimize::LevelName(level) +
                " backend=" + kernels::BackendChoiceName(backend) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(OptimizeEquivalenceTest, EmaxStreamByteIdenticalAcrossKnobAndThreads) {
  const uint64_t seed = testing::TestSeed(27101);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    for (bool sparse_regime : {true, false}) {
      Instance inst = sparse_regime ? SparseInstance(rng) : DenseInstance(rng);
      SweepEngine(query::EnumeratorKind::kEmax, inst,
                  sparse_regime ? "sparse-regime" : "dense-regime");
    }
  }
}

TEST(OptimizeEquivalenceTest, UnrankedStreamByteIdenticalAcrossKnobAndThreads) {
  const uint64_t seed = testing::TestSeed(27102);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    for (bool sparse_regime : {true, false}) {
      Instance inst =
          sparse_regime ? SparseInstance(rng, /*n=*/4) : DenseInstance(rng);
      SweepEngine(query::EnumeratorKind::kUnranked, inst,
                  sparse_regime ? "sparse-regime" : "dense-regime");
    }
  }
}

// The s-projector I_max engine composes no product automaton, so the knob
// is documented-inert there (projector/imax_enum.h); its stream must not
// move under any level, at any thread count.
TEST(OptimizeEquivalenceTest, SProjectorStreamInertUnderKnob) {
  const uint64_t seed = testing::TestSeed(27103);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Alphabet ab = workload::MakeSymbols(2, "n");
  auto p = projector::SProjector::FromRegex(ab, ". *", "n0 +", ". *");
  ASSERT_TRUE(p.ok()) << p.status();
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);

  auto drain = [&](Level level, exec::ThreadPool* pool) {
    exec::EngineOptions options;
    options.pool = pool;
    options.optimize = level;
    auto it = query::MakeEnumerator(mu, *p, options);
    std::vector<ranking::ScoredAnswer> out;
    if (!it.ok()) {
      ADD_FAILURE() << it.status();
      return out;
    }
    while (auto a = (*it)->Next()) out.push_back(std::move(*a));
    return out;
  };
  const std::vector<ranking::ScoredAnswer> reference =
      drain(Level::kOff, nullptr);
  EXPECT_FALSE(reference.empty());
  for (Level level : {Level::kAuto, Level::kOn}) {
    for (int threads : {1, 2, 8}) {
      std::optional<exec::ThreadPool> pool;
      if (threads > 1) pool.emplace(threads - 1);
      ExpectSameStream(drain(level, pool ? &*pool : nullptr), reference,
                       std::string("sprojector optimize=") +
                           optimize::LevelName(level) +
                           " threads=" + std::to_string(threads));
    }
  }
}

// Branch-and-bound top-confidence rides the E_max stream; feeding it the
// minimized machine must not move the certified optimum.
TEST(OptimizeEquivalenceTest, TopConfidencePreservedByMinimization) {
  const uint64_t seed = testing::TestSeed(27104);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    Instance inst = DenseInstance(rng);
    auto original = query::TopAnswerByConfidence(inst.mu, inst.t);
    transducer::Transducer minimized = optimize::MinimizeTransducer(inst.t);
    auto optimized = query::TopAnswerByConfidence(inst.mu, minimized);
    ASSERT_EQ(original.ok(), optimized.ok());
    if (!original.ok()) continue;  // empty answer space: both must agree
    EXPECT_EQ(original->output, optimized->output);
    EXPECT_NEAR(original->confidence, optimized->confidence, 1e-12);
    EXPECT_EQ(original->certified_optimal, optimized->certified_optimal);
  }
}

// ---------------------------------------------------------------------------
// Metamorphic properties of the passes themselves.

TEST(OptimizeEquivalenceTest, PruneAndMinimizeAreIdempotent) {
  const uint64_t seed = testing::TestSeed(27105);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    Instance inst = trial % 2 == 0 ? DenseInstance(rng)
                                   : SparseInstance(rng, /*n=*/4);
    transducer::Transducer pruned = optimize::PruneTransducer(inst.t);
    EXPECT_EQ(io::FormatTransducer(optimize::PruneTransducer(pruned)),
              io::FormatTransducer(pruned))
        << "prune not idempotent, trial " << trial;
    optimize::OptimizeStats stats;
    transducer::Transducer minimized =
        optimize::MinimizeTransducer(inst.t, &stats);
    EXPECT_LE(minimized.num_states(), inst.t.num_states());
    optimize::OptimizeStats again;
    EXPECT_EQ(io::FormatTransducer(optimize::MinimizeTransducer(minimized,
                                                                &again)),
              io::FormatTransducer(minimized))
        << "minimize not idempotent, trial " << trial;
    EXPECT_EQ(again.states_unreachable + again.states_dead +
                  again.states_merged,
              0)
        << "second minimize still found work, trial " << trial;
  }
}

TEST(OptimizeEquivalenceTest, PruneNeverChangesAnswerSetOrScores) {
  const uint64_t seed = testing::TestSeed(27106);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = DenseInstance(rng);
    transducer::Transducer pruned = optimize::PruneTransducer(inst.t);
    // Same lexicographic answer list...
    EXPECT_EQ(query::AllAnswers(inst.mu, pruned),
              query::AllAnswers(inst.mu, inst.t));
    // ...and ground truth agrees answer by answer, bitwise: the per-world
    // probability products are identical factor sequences.
    auto want = testing::BruteForceAnswers(inst.mu, inst.t);
    auto got = testing::BruteForceAnswers(inst.mu, pruned);
    EXPECT_EQ(got.size(), want.size());
    for (const auto& [o, conf] : want) {
      auto it = got.find(o);
      ASSERT_NE(it, got.end());
      EXPECT_EQ(it->second, conf);
    }
  }
}

TEST(OptimizeEquivalenceTest, MinimizePreservesAnswerSetAndScores) {
  const uint64_t seed = testing::TestSeed(27107);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = DenseInstance(rng);
    transducer::Transducer minimized = optimize::MinimizeTransducer(inst.t);
    EXPECT_EQ(query::AllAnswers(inst.mu, minimized),
              query::AllAnswers(inst.mu, inst.t));
    // Merging equivalent states can reorder max/sum accumulation, so the
    // documented tolerance applies (docs/OPTIMIZE.md): 1e-12 absolute on
    // probabilities (all ≤ 1).
    auto want = testing::BruteForceAnswers(inst.mu, inst.t);
    auto got = testing::BruteForceAnswers(inst.mu, minimized);
    EXPECT_EQ(got.size(), want.size());
    for (const auto& [o, conf] : want) {
      auto it = got.find(o);
      ASSERT_NE(it, got.end());
      EXPECT_NEAR(it->second, conf, 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Weight pushing (optimize/weight_push.h).

// A random layered (hence acyclic) weighted automaton with one final layer.
optimize::WeightedAutomaton RandomLayeredAutomaton(Rng& rng) {
  optimize::WeightedAutomaton wa;
  const int layers = static_cast<int>(rng.UniformInt(2, 4));
  const int width = static_cast<int>(rng.UniformInt(1, 3));
  wa.num_states = 1 + layers * width;
  wa.initial = 0;
  wa.final_weight.assign(wa.num_states, optimize::kNegInf);
  auto state = [&](int layer, int i) { return 1 + (layer - 1) * width + i; };
  for (int i = 0; i < width; ++i) {
    wa.arcs.push_back({0, state(1, i), rng.UniformDouble() * 4 - 2});
    wa.final_weight[state(layers, i)] = rng.UniformDouble() * 4 - 2;
  }
  for (int layer = 1; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j) {
        if (rng.Bernoulli(0.7)) {
          wa.arcs.push_back(
              {state(layer, i), state(layer + 1, j), rng.UniformDouble() * 4 - 2});
        }
      }
    }
  }
  return wa;
}

// Max-plus total of every source→final path, by DFS.
std::vector<double> AllPathTotals(const optimize::WeightedAutomaton& wa) {
  std::vector<std::vector<const optimize::WeightedAutomaton::Arc*>> out(
      wa.num_states);
  for (const auto& arc : wa.arcs) out[arc.source].push_back(&arc);
  std::vector<double> totals;
  std::vector<std::pair<int, double>> stack{
      {wa.initial, wa.initial_weight}};
  while (!stack.empty()) {
    auto [q, acc] = stack.back();
    stack.pop_back();
    if (wa.final_weight[q] != optimize::kNegInf) {
      totals.push_back(acc + wa.final_weight[q]);
    }
    for (const auto* arc : out[q]) {
      stack.push_back({arc->target, acc + arc->weight});
    }
  }
  return totals;
}

TEST(OptimizeEquivalenceTest, WeightPushingPreservesPathTotals) {
  const uint64_t seed = testing::TestSeed(27108);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    optimize::WeightedAutomaton wa = RandomLayeredAutomaton(rng);
    std::vector<double> before = AllPathTotals(wa);
    auto phi_before = optimize::DistanceToFinal(wa);
    ASSERT_TRUE(phi_before.ok()) << phi_before.status();
    const bool empty_language =
        (*phi_before)[static_cast<size_t>(wa.initial)] == optimize::kNegInf;
    const std::vector<optimize::WeightedAutomaton::Arc> arcs_before = wa.arcs;
    ASSERT_TRUE(optimize::PushWeights(&wa).ok());
    if (empty_language) {
      // Documented degenerate case: no accepting path constrains anything,
      // so the push is the identity — bitwise.
      ASSERT_EQ(wa.arcs.size(), arcs_before.size());
      for (size_t i = 0; i < wa.arcs.size(); ++i) {
        EXPECT_EQ(wa.arcs[i].weight, arcs_before[i].weight);
      }
      continue;
    }
    std::vector<double> after = AllPathTotals(wa);
    ASSERT_EQ(before.size(), after.size());
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    for (size_t i = 0; i < before.size(); ++i) {
      // The documented tolerance: per-path totals telescope exactly in
      // exact arithmetic; doubles round at each reassociation.
      EXPECT_NEAR(after[i], before[i], 1e-12) << "path " << i;
    }
    // The point of pushing: every live state's completion distance is now
    // zero, so the A*/Viterbi bound at any frontier state is exact.
    auto phi = optimize::DistanceToFinal(wa);
    ASSERT_TRUE(phi.ok()) << phi.status();
    for (int q = 0; q < wa.num_states; ++q) {
      if ((*phi)[q] == optimize::kNegInf) continue;
      EXPECT_NEAR((*phi)[q], 0.0, 1e-12) << "state " << q;
    }
    // Idempotence: a second push has nothing left to move.
    optimize::WeightedAutomaton pushed = wa;
    ASSERT_TRUE(optimize::PushWeights(&pushed).ok());
    for (size_t i = 0; i < wa.arcs.size(); ++i) {
      EXPECT_NEAR(pushed.arcs[i].weight, wa.arcs[i].weight, 1e-12);
    }
  }
}

TEST(OptimizeEquivalenceTest, WeightPushingRejectsDivergingCycles) {
  optimize::WeightedAutomaton wa;
  wa.num_states = 2;
  wa.initial = 0;
  wa.final_weight = {optimize::kNegInf, 0.0};
  wa.arcs.push_back({0, 1, 1.0});
  wa.arcs.push_back({1, 0, 0.5});  // 0→1→0 gains +1.5 per lap, 1 is final
  Status st = optimize::PushWeights(&wa);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("diverge"), std::string::npos) << st;

  // A negative-weight cycle converges: Bellman-Ford must terminate and the
  // push must succeed.
  optimize::WeightedAutomaton ok;
  ok.num_states = 2;
  ok.initial = 0;
  ok.final_weight = {optimize::kNegInf, 0.0};
  ok.arcs.push_back({0, 1, -1.0});
  ok.arcs.push_back({1, 0, -0.5});
  EXPECT_TRUE(optimize::PushWeights(&ok).ok());
}

// ---------------------------------------------------------------------------
// The cache-key regression (the bug this PR fixes): CompositionCache used
// to key entries by constraint only, so flipping the optimize knob could
// return a product built under the other setting.

TEST(OptimizeEquivalenceTest, CompositionCacheKeysOptimizationLevel) {
  // A query with an unreachable state and a dead state, so the pruned
  // product is strictly smaller than the raw one and any key collision is
  // visible as a wrong state count.
  Alphabet ab = workload::MakeSymbols(2, "n");
  transducer::Transducer t(ab, ab, 4);
  t.SetInitial(0);
  t.SetAccepting(1);
  ASSERT_TRUE(t.AddTransition(0, 0, 1, {0}).ok());
  ASSERT_TRUE(t.AddTransition(1, 0, 1, {0}).ok());
  ASSERT_TRUE(t.AddTransition(1, 1, 1, {1}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 3, {1}).ok());  // 3: reachable, dead
  ASSERT_TRUE(t.AddTransition(2, 0, 1, {0}).ok());  // 2: unreachable

  for (bool optimized_first : {true, false}) {
    transducer::CompositionCache cache(&t);
    ranking::OutputConstraint all = ranking::OutputConstraint::All();
    auto first = cache.Compose(all, optimized_first);
    auto second = cache.Compose(all, !optimized_first);
    auto opt = optimized_first ? first : second;
    auto raw = optimized_first ? second : first;
    EXPECT_LT(opt->num_states(), raw->num_states())
        << "optimized_first=" << optimized_first
        << ": knob crossed the cache";
    // Replays hit their own entries and return the identical objects.
    EXPECT_EQ(cache.Compose(all, true).get(), opt.get());
    EXPECT_EQ(cache.Compose(all, false).get(), raw.get());
    EXPECT_GE(cache.stats().hits, 2);
    // A narrower constraint under both knob settings: both sides must
    // admit exactly the same answers.
    ranking::OutputConstraint narrowed;
    narrowed.prefix = {0};
    narrowed.allow_equal = false;
    auto opt_narrow = cache.Compose(narrowed, true);
    auto raw_narrow = cache.Compose(narrowed, false);
    Str w01 = {0, 0};
    Str w0 = {0};
    EXPECT_EQ(opt_narrow->TransduceAll(w01).empty(),
              raw_narrow->TransduceAll(w01).empty());
    EXPECT_EQ(opt_narrow->TransduceAll(w0).empty(),
              raw_narrow->TransduceAll(w0).empty());
  }
}

TEST(OptimizeEquivalenceTest, FusedProductPruneMatchesComposeThenPrune) {
  // The optimized cache path prunes DURING specialization (the full
  // product is never materialized); this pins it, transducer-for-
  // transducer, to the reference pipeline it fuses: prune the root, run
  // the direct composition, prune the product. Random machines and random
  // constraints, including constraints whose product has an empty
  // language (the canonical one-state prune result).
  const uint64_t seed = testing::TestSeed(27109);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Instance inst = DenseInstance(rng);
    const int out_sigma =
        static_cast<int>(inst.t.output_alphabet().size());
    transducer::Transducer pruned_root = optimize::PruneTransducer(inst.t);
    transducer::CompositionCache cache(&inst.t);
    for (int c = 0; c < 6; ++c) {
      ranking::OutputConstraint constraint;
      const int w = static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < w; ++i) {
        constraint.prefix.push_back(
            static_cast<Symbol>(rng.UniformInt(0, out_sigma - 1)));
      }
      for (Symbol s = 0; s < static_cast<Symbol>(out_sigma); ++s) {
        if (rng.Bernoulli(0.3)) constraint.excluded_next.insert(s);
      }
      constraint.allow_equal = rng.Bernoulli(0.5);

      transducer::Transducer expected = optimize::PruneTransducer(
          transducer::ComposeWithOutputConstraint(pruned_root, constraint));
      std::shared_ptr<const transducer::Transducer> fused =
          cache.Compose(constraint, true);
      EXPECT_EQ(io::FormatTransducer(*fused), io::FormatTransducer(expected))
          << "constraint " << c << ": fused prune diverged from "
          << "compose-then-prune";
    }
  }
}

}  // namespace
}  // namespace tms
