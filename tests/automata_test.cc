#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "automata/regex.h"
#include "common/rng.h"
#include "workload/random_models.h"

namespace tms::automata {
namespace {

Alphabet Binary() { return *Alphabet::FromNames({"0", "1"}); }

// NFA accepting strings containing "01".
Nfa Contains01() {
  Nfa nfa(Binary(), 3);
  nfa.SetInitial(0);
  nfa.SetAccepting(2, true);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 1, 2);
  nfa.AddTransition(2, 0, 2);
  nfa.AddTransition(2, 1, 2);
  return nfa;
}

TEST(NfaTest, AcceptsBySomeRun) {
  Nfa nfa = Contains01();
  EXPECT_TRUE(nfa.Accepts({0, 1}));
  EXPECT_TRUE(nfa.Accepts({1, 0, 1, 0}));
  EXPECT_FALSE(nfa.Accepts({1, 0}));
  EXPECT_FALSE(nfa.Accepts({}));
  EXPECT_FALSE(nfa.Accepts({1, 1, 1}));
}

TEST(NfaTest, IsDeterministicDetectsMissingAndMultipleEdges) {
  Nfa nfa = Contains01();
  EXPECT_FALSE(nfa.IsDeterministic());  // state 0 on "0" has two targets
  Nfa det(Binary(), 1);
  det.AddTransition(0, 0, 0);
  det.AddTransition(0, 1, 0);
  EXPECT_TRUE(det.IsDeterministic());
}

TEST(NfaTest, ValidateCatchesBadInitial) {
  Nfa nfa(Binary(), 0);
  EXPECT_FALSE(nfa.Validate().ok());  // no states
}

TEST(DfaTest, ExactString) {
  Dfa dfa = Dfa::ExactString(Binary(), {0, 1, 1});
  EXPECT_TRUE(dfa.Accepts({0, 1, 1}));
  EXPECT_FALSE(dfa.Accepts({0, 1}));
  EXPECT_FALSE(dfa.Accepts({0, 1, 1, 0}));
  EXPECT_FALSE(dfa.Accepts({}));
}

TEST(DfaTest, AcceptAllAndNone) {
  EXPECT_TRUE(Dfa::AcceptAll(Binary()).Accepts({}));
  EXPECT_TRUE(Dfa::AcceptAll(Binary()).Accepts({0, 1, 0}));
  EXPECT_FALSE(Dfa::AcceptNone(Binary()).Accepts({}));
  EXPECT_FALSE(Dfa::AcceptNone(Binary()).Accepts({1}));
  EXPECT_TRUE(Dfa::EmptyStringOnly(Binary()).Accepts({}));
  EXPECT_FALSE(Dfa::EmptyStringOnly(Binary()).Accepts({0}));
}

TEST(OpsTest, DeterminizePreservesLanguage) {
  Nfa nfa = Contains01();
  Dfa dfa = Determinize(nfa);
  for (int n = 0; n <= 6; ++n) {
    for (int bits = 0; bits < (1 << n); ++bits) {
      Str s;
      for (int i = 0; i < n; ++i) s.push_back((bits >> i) & 1);
      EXPECT_EQ(dfa.Accepts(s), nfa.Accepts(s)) << FormatStr(Binary(), s);
    }
  }
}

TEST(OpsTest, DeterminizeRandomNfasProperty) {
  Rng rng(7);
  Alphabet ab = Binary();
  for (int trial = 0; trial < 30; ++trial) {
    Nfa nfa = workload::RandomNfa(ab, 4, 1.2, rng);
    Dfa dfa = Determinize(nfa);
    Dfa minimized = Minimize(dfa);
    for (int n = 0; n <= 5; ++n) {
      for (int bits = 0; bits < (1 << n); ++bits) {
        Str s;
        for (int i = 0; i < n; ++i) s.push_back((bits >> i) & 1);
        EXPECT_EQ(dfa.Accepts(s), nfa.Accepts(s));
        EXPECT_EQ(minimized.Accepts(s), nfa.Accepts(s));
      }
    }
    EXPECT_LE(minimized.num_states(), dfa.num_states());
  }
}

TEST(OpsTest, MinimizeReachesCanonicalSize) {
  // L = strings containing "01" has a minimal DFA with 3 states.
  Dfa minimized = Minimize(Determinize(Contains01()));
  EXPECT_EQ(minimized.num_states(), 3);
}

TEST(OpsTest, ProductAndComplement) {
  Dfa contains01 = Determinize(Contains01());
  Dfa all = Dfa::AcceptAll(Binary());
  Dfa even(Binary(), 2);  // even number of 1s
  even.SetInitial(0);
  even.SetAccepting(0, true);
  even.SetTransition(0, 0, 0);
  even.SetTransition(0, 1, 1);
  even.SetTransition(1, 0, 1);
  even.SetTransition(1, 1, 0);

  Dfa both = Product(contains01, even, BoolOp::kAnd);
  EXPECT_TRUE(both.Accepts({0, 1, 1}));
  EXPECT_FALSE(both.Accepts({0, 1}));       // odd 1s
  EXPECT_FALSE(both.Accepts({1, 1}));       // no "01"

  Dfa either = Product(contains01, even, BoolOp::kOr);
  EXPECT_TRUE(either.Accepts({1, 1}));
  EXPECT_FALSE(either.Accepts({1}));

  Dfa diff = Product(all, even, BoolOp::kDiff);
  EXPECT_TRUE(diff.Accepts({1}));
  EXPECT_FALSE(diff.Accepts({1, 1}));

  Dfa comp = Complement(even);
  EXPECT_TRUE(comp.Accepts({1}));
  EXPECT_FALSE(comp.Accepts({}));
}

TEST(OpsTest, UnionConcatReverseProperty) {
  Rng rng(11);
  Alphabet ab = Binary();
  for (int trial = 0; trial < 20; ++trial) {
    Nfa a = workload::RandomNfa(ab, 3, 1.0, rng);
    Nfa b = workload::RandomNfa(ab, 3, 1.0, rng);
    Nfa u = NfaUnion(a, b);
    Nfa c = NfaConcat(a, b);
    Nfa r = Reverse(a);
    for (int n = 0; n <= 5; ++n) {
      for (int bits = 0; bits < (1 << n); ++bits) {
        Str s;
        for (int i = 0; i < n; ++i) s.push_back((bits >> i) & 1);
        EXPECT_EQ(u.Accepts(s), a.Accepts(s) || b.Accepts(s));
        // Concatenation: check all splits.
        bool concat_expected = false;
        for (int split = 0; split <= n && !concat_expected; ++split) {
          Str left(s.begin(), s.begin() + split);
          Str right(s.begin() + split, s.end());
          concat_expected = a.Accepts(left) && b.Accepts(right);
        }
        EXPECT_EQ(c.Accepts(s), concat_expected);
        Str rev(s.rbegin(), s.rend());
        EXPECT_EQ(r.Accepts(rev), a.Accepts(s));
      }
    }
  }
}

TEST(OpsTest, IsEmptyAndEquivalent) {
  EXPECT_TRUE(IsEmpty(Dfa::AcceptNone(Binary()).ToNfa()));
  EXPECT_FALSE(IsEmpty(Contains01()));
  Dfa d1 = Determinize(Contains01());
  Dfa d2 = Minimize(d1);
  EXPECT_TRUE(Equivalent(d1, d2));
  EXPECT_FALSE(Equivalent(d1, Dfa::AcceptAll(Binary())));
}

TEST(OpsTest, CountAcceptedStrings) {
  // All 2^n binary strings.
  EXPECT_EQ(CountAcceptedStrings(Dfa::AcceptAll(Binary()), 10).ToString(),
            "1024");
  // Strings with "01": 2^n - (n+1) (strings avoiding 01 are 1^a 0^b).
  Dfa dfa = Determinize(Contains01());
  EXPECT_EQ(CountAcceptedStrings(dfa, 4).ToString(), "11");
  EXPECT_EQ(CountAcceptedStrings(dfa, 10).ToString(),
            std::to_string(1024 - 11));
  EXPECT_EQ(CountAcceptedStrings(Dfa::AcceptNone(Binary()), 5).ToString(),
            "0");
}

TEST(OpsTest, EnumerateAcceptedStrings) {
  // Length-3 strings containing "01": 001, 010, 011, 101.
  auto strings = EnumerateAcceptedStrings(Contains01(), 3);
  ASSERT_EQ(strings.size(), 4u);
  EXPECT_EQ(strings[0], (Str{0, 0, 1}));
  EXPECT_EQ(strings[3], (Str{1, 0, 1}));
  EXPECT_TRUE(EnumerateAcceptedStrings(Contains01(), 1).empty());
}

TEST(RegexTest, NameModeBasics) {
  auto ab = *Alphabet::FromNames({"r1a", "la"});
  auto nfa = CompileRegex(ab, "r1a * la");
  ASSERT_TRUE(nfa.ok());
  EXPECT_TRUE(nfa->Accepts({1}));
  EXPECT_TRUE(nfa->Accepts({0, 0, 1}));
  EXPECT_FALSE(nfa->Accepts({0}));
  EXPECT_FALSE(nfa->Accepts({1, 1}));
}

TEST(RegexTest, AlternationGroupingRepetition) {
  auto ab = *Alphabet::FromNames({"a", "b", "c"});
  auto dfa = CompileRegexToDfa(ab, "( a | b ) + c ?");
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Accepts(*ParseStr(ab, "a")));
  EXPECT_TRUE(dfa->Accepts(*ParseStr(ab, "a b a")));
  EXPECT_TRUE(dfa->Accepts(*ParseStr(ab, "b b c")));
  EXPECT_FALSE(dfa->Accepts(*ParseStr(ab, "c")));
  EXPECT_FALSE(dfa->Accepts(*ParseStr(ab, "a c c")));
  EXPECT_FALSE(dfa->Accepts({}));
}

TEST(RegexTest, DotAndClasses) {
  auto ab = *Alphabet::FromNames({"a", "b", "c"});
  auto any = CompileRegexToDfa(ab, ". *");
  ASSERT_TRUE(any.ok());
  EXPECT_TRUE(any->Accepts({}));
  EXPECT_TRUE(any->Accepts(*ParseStr(ab, "a b c")));

  auto cls = CompileRegexToDfa(ab, "[ a b ] +");
  ASSERT_TRUE(cls.ok());
  EXPECT_TRUE(cls->Accepts(*ParseStr(ab, "a b")));
  EXPECT_FALSE(cls->Accepts(*ParseStr(ab, "a c")));

  auto neg = CompileRegexToDfa(ab, "[^ c ] +");
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->Accepts(*ParseStr(ab, "a b")));
  EXPECT_FALSE(neg->Accepts(*ParseStr(ab, "c")));
}

TEST(RegexTest, EmptyPatternMatchesEpsilonOnly) {
  auto ab = *Alphabet::FromNames({"a"});
  auto dfa = CompileRegexToDfa(ab, "");
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Accepts({}));
  EXPECT_FALSE(dfa->Accepts({0}));
}

TEST(RegexTest, CharModeExampleFiveOne) {
  // Example 5.1's expressions adapted to the text alphabet.
  Alphabet chars;
  for (char c = 'a'; c <= 'z'; ++c) chars.Intern(std::string(1, c));
  chars.Intern(":");
  chars.Intern(" ");
  auto prefix = CompileCharRegexToDfa(chars, ".*name:");
  ASSERT_TRUE(prefix.ok());
  auto to_str = [&](const std::string& text) {
    Str out;
    for (char c : text) out.push_back(*chars.Find(std::string(1, c)));
    return out;
  };
  EXPECT_TRUE(prefix->Accepts(to_str("xyname:")));
  EXPECT_TRUE(prefix->Accepts(to_str("name:")));
  EXPECT_FALSE(prefix->Accepts(to_str("name")));

  auto word = CompileCharRegexToDfa(chars, "[a-z]+");
  ASSERT_TRUE(word.ok());
  EXPECT_TRUE(word->Accepts(to_str("hillary")));
  EXPECT_FALSE(word->Accepts(to_str("hi there")));
  EXPECT_FALSE(word->Accepts({}));
}

TEST(RegexTest, SyntaxErrors) {
  auto ab = *Alphabet::FromNames({"a"});
  EXPECT_FALSE(CompileRegex(ab, "( a").ok());
  EXPECT_FALSE(CompileRegex(ab, "a )").ok());
  EXPECT_FALSE(CompileRegex(ab, "*").ok());
  EXPECT_FALSE(CompileRegex(ab, "[ a").ok());
  EXPECT_FALSE(CompileRegex(ab, "unknownsym").ok());
  EXPECT_FALSE(CompileRegex(ab, "a ]").ok());
  // Empty alternation branches are legal (Perl-style) and match ε.
  auto empty_alt = CompileRegex(ab, "| |");
  ASSERT_TRUE(empty_alt.ok());
  EXPECT_TRUE(empty_alt->Accepts({}));
  EXPECT_FALSE(empty_alt->Accepts({0}));
}

TEST(RegexTest, CharModeRequiresSingleCharNames) {
  auto ab = *Alphabet::FromNames({"ab", "c"});
  EXPECT_FALSE(CompileCharRegex(ab, "c").ok());
}

}  // namespace
}  // namespace tms::automata
