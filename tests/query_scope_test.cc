// Tests for request-scoped observability (obs/query_scope.h): per-query
// metric attribution layered over the global registry, trace-context
// propagation across exec::ThreadPool tasks, and span parentage under the
// query root — including the acceptance scenario of two concurrent
// queries on one shared pool with disjoint counters and byte-identical
// answer streams. `ctest -L obs` runs these; configure with
// -DTMS_SANITIZE=thread for the data-race version.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "query/emax_enum.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

#if TMS_OBS_ACTIVE

namespace tms {
namespace {

using obs::QueryScope;
using obs::TraceEvent;
using ranking::ScoredAnswer;
using transducer::Transducer;

class QueryScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
  void TearDown() override {
    obs::SetTracingEnabled(false);
    obs::Tracer::Global().Clear();
  }
};

markov::MarkovSequence RandomMu(Rng& rng, int n = 6) {
  return workload::RandomMarkovSequence(3, n, 2, rng);
}

Transducer RandomT(const Alphabet& nodes, Rng& rng) {
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.max_emission = 2;
  opts.output_symbols = 2;
  opts.deterministic = false;
  return workload::RandomTransducer(nodes, opts, rng);
}

std::vector<ScoredAnswer> DrainEmax(const markov::MarkovSequence& mu,
                                    const Transducer& t,
                                    exec::ThreadPool* pool, int limit = 50) {
  query::EmaxEnumerator it(mu, t, query::EmaxEnumerator::Options{pool,
                                                                 nullptr});
  std::vector<ScoredAnswer> out;
  while (static_cast<int>(out.size()) < limit) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

// Every span attributed to `qid` must parent under another span of the
// same query or directly under the query's root span; the root span
// itself ("obs.query", emitted at scope close) is the only one allowed a
// zero parent. Returns the number of spans checked.
int ExpectParentedUnderRoot(const std::vector<TraceEvent>& events,
                            uint64_t qid, uint64_t root) {
  std::set<uint64_t> ids{root};
  for (const TraceEvent& e : events) {
    if (e.query_id == qid) ids.insert(e.span_id);
  }
  int checked = 0;
  for (const TraceEvent& e : events) {
    if (e.query_id != qid) continue;
    ++checked;
    if (e.span_id == root) {
      EXPECT_EQ(e.parent_id, 0u) << "root span must be top-level";
      continue;
    }
    EXPECT_NE(e.span_id, 0u) << e.name;
    EXPECT_TRUE(ids.count(e.parent_id) != 0)
        << e.name << " span " << e.span_id << " parent " << e.parent_id
        << " escapes query " << qid;
  }
  return checked;
}

TEST_F(QueryScopeTest, RoutesMetricsToScopeAndGlobal) {
  QueryScope scope("unit");
  TMS_OBS_COUNT("scope.test.counter", 3);
  TMS_OBS_HISTOGRAM("scope.test.hist", 7);
  TMS_OBS_GAUGE_SET("scope.test.gauge", 1.5);
  obs::RegistrySnapshot local = scope.Snapshot();
  EXPECT_EQ(local.counters.at("scope.test.counter"), 3);
  EXPECT_EQ(local.histograms.at("scope.test.hist").count, 1);
  EXPECT_DOUBLE_EQ(local.gauges.at("scope.test.gauge"), 1.5);
  EXPECT_EQ(obs::Registry::Global().counter("scope.test.counter").value(), 3);
}

TEST_F(QueryScopeTest, ClosePublishesQuerySummary) {
  { QueryScope scope("summary"); }
  EXPECT_EQ(obs::Registry::Global().counter("obs.query.count").value(), 1);
  EXPECT_EQ(
      obs::Registry::Global().histogram("obs.query.duration_ns").count(), 1);
}

TEST_F(QueryScopeTest, NestedScopesAttributeToInnermost) {
  QueryScope outer("outer");
  TMS_OBS_COUNT("scope.nest", 1);
  {
    QueryScope inner("inner");
    EXPECT_NE(inner.query_id(), outer.query_id());
    EXPECT_EQ(QueryScope::Current(), &inner);
    TMS_OBS_COUNT("scope.nest", 10);
    EXPECT_EQ(inner.Snapshot().counters.at("scope.nest"), 10);
  }
  EXPECT_EQ(QueryScope::Current(), &outer);
  EXPECT_EQ(outer.Snapshot().counters.at("scope.nest"), 1);
  EXPECT_EQ(obs::Registry::Global().counter("scope.nest").value(), 11);
}

TEST_F(QueryScopeTest, AdoptionReattributesToCapturedScope) {
  QueryScope a("query-a");
  obs::TraceContext ctx_a = obs::CurrentTraceContext();
  QueryScope b("query-b");
  TMS_OBS_COUNT("scope.adopt", 1);  // innermost: b
  {
    obs::ScopeAdoption adopt(ctx_a);
    EXPECT_EQ(QueryScope::Current(), &a);
    TMS_OBS_COUNT("scope.adopt", 100);  // adopted: a
  }
  EXPECT_EQ(QueryScope::Current(), &b);
  EXPECT_EQ(a.Snapshot().counters.at("scope.adopt"), 100);
  EXPECT_EQ(b.Snapshot().counters.at("scope.adopt"), 1);
}

TEST_F(QueryScopeTest, InterleavedScopesOnTwoThreadsStayDisjoint) {
  // Two threads each run their own query; a spin barrier forces the
  // scopes to be alive and mutating at the same time. Neither scope may
  // see the other's increments.
  std::atomic<int> ready{0};
  int64_t got_a = 0, got_b = 0;
  auto run = [&ready](const char* name, int64_t n, int64_t* got) {
    QueryScope scope(name);
    ready.fetch_add(1);
    while (ready.load() < 2) {}
    for (int64_t i = 0; i < n; ++i) TMS_OBS_COUNT("scope.interleaved", 1);
    auto snapshot = scope.Snapshot();
    auto it = snapshot.counters.find("scope.interleaved");
    *got = it == snapshot.counters.end() ? 0 : it->second;
  };
  std::thread ta(run, "query-a", 1000, &got_a);
  std::thread tb(run, "query-b", 11, &got_b);
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, 1000);
  EXPECT_EQ(got_b, 11);
  EXPECT_EQ(obs::Registry::Global().counter("scope.interleaved").value(),
            1011);
}

TEST_F(QueryScopeTest, LawlerChildSolveSpansNestUnderQueryRoot) {
  // The core tentpole claim: with parallel Lawler child solves, the
  // subspace_solve spans run on pool workers but still parent (possibly
  // transitively) under this query's root span — at every thread count.
  obs::SetTracingEnabled(true);
  Rng rng(4242);
  markov::MarkovSequence mu = RandomMu(rng);
  Transducer t = RandomT(mu.nodes(), rng);
  for (int threads : {1, 2, 8}) {
    obs::Tracer::Global().Clear();
    uint64_t qid = 0, root = 0;
    std::vector<ScoredAnswer> answers;
    {
      exec::ThreadPool pool(threads - 1);
      QueryScope scope("lawler-parentage");
      qid = scope.query_id();
      root = scope.root_span_id();
      answers = DrainEmax(mu, t, threads > 1 ? &pool : nullptr);
    }
    ASSERT_FALSE(answers.empty()) << "threads=" << threads;
    std::vector<TraceEvent> events = obs::Tracer::Global().Events();
    int checked = ExpectParentedUnderRoot(events, qid, root);
    EXPECT_GT(checked, 0) << "threads=" << threads;
    int solves = 0;
    for (const TraceEvent& e : events) {
      if (e.query_id == qid &&
          std::string_view(e.name) == "query.emax_enum.subspace_solve") {
        ++solves;
      }
    }
    EXPECT_GT(solves, 0) << "threads=" << threads;
  }
}

TEST_F(QueryScopeTest, ConcurrentBatchQueriesOnSharedPoolStayDisjoint) {
  // The acceptance scenario: two concurrent queries through
  // db::BatchEvaluator on ONE shared pool. Each must (a) reproduce the
  // sequential answer stream byte-for-byte, (b) report exactly its own
  // per-query counters, and (c) own a span tree parented under its own
  // root, never the other query's.
  obs::SetTracingEnabled(true);
  Rng rng(99);
  markov::MarkovSequence seed_a = RandomMu(rng, 5);
  db::SequenceCollection coll_a(seed_a.nodes());
  ASSERT_TRUE(coll_a.Insert("a-0", seed_a).ok());
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(coll_a.Insert("a-" + std::to_string(i),
                              workload::RandomMarkovSequence(3, 4 + i, 2, rng))
                    .ok());
  }
  Transducer t_a = RandomT(coll_a.nodes(), rng);
  markov::MarkovSequence seed_b = RandomMu(rng, 6);
  db::SequenceCollection coll_b(seed_b.nodes());
  ASSERT_TRUE(coll_b.Insert("b-0", seed_b).ok());
  ASSERT_TRUE(
      coll_b.Insert("b-1", workload::RandomMarkovSequence(3, 5, 2, rng)).ok());
  Transducer t_b = RandomT(coll_b.nodes(), rng);

  // Sequential baselines, outside any scope.
  auto BaselineRows = [](const db::SequenceCollection& coll,
                         const Transducer& t) {
    db::BatchEvaluator::Options options;  // threads=1, owned no-op pool
    auto batch = db::BatchEvaluator::Create(&coll, &t, options);
    EXPECT_TRUE(batch.ok());
    auto rows = batch->TopKPerSequence(3);
    EXPECT_TRUE(rows.ok());
    return std::move(*rows);
  };
  auto want_a = BaselineRows(coll_a, t_a);
  auto want_b = BaselineRows(coll_b, t_b);

  exec::ThreadPool shared(3);
  obs::Tracer::Global().Clear();
  struct QueryOutcome {
    uint64_t qid = 0;
    uint64_t root = 0;
    int64_t sequences = 0;
    std::vector<db::SequenceCollection::Row> rows;
  };
  std::atomic<int> ready{0};
  auto run = [&shared, &ready](const char* name,
                               const db::SequenceCollection* coll,
                               const Transducer* t, QueryOutcome* out) {
    QueryScope scope(name);
    out->qid = scope.query_id();
    out->root = scope.root_span_id();
    ready.fetch_add(1);
    while (ready.load() < 2) {}
    db::BatchEvaluator::Options options;
    options.pool = &shared;
    auto batch = db::BatchEvaluator::Create(coll, t, options);
    ASSERT_TRUE(batch.ok());
    auto rows = batch->TopKPerSequence(3);
    ASSERT_TRUE(rows.ok());
    out->rows = std::move(*rows);
    auto snapshot = scope.Snapshot();
    auto it = snapshot.counters.find("db.batch.sequences");
    out->sequences = it == snapshot.counters.end() ? 0 : it->second;
  };
  QueryOutcome out_a, out_b;
  std::thread qa(run, "batch-a", &coll_a, &t_a, &out_a);
  std::thread qb(run, "batch-b", &coll_b, &t_b, &out_b);
  qa.join();
  qb.join();

  // (a) byte-identical answer streams.
  auto ExpectSameRows = [](const std::vector<db::SequenceCollection::Row>& got,
                           const std::vector<db::SequenceCollection::Row>&
                               want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, want[i].key);
      EXPECT_EQ(got[i].answer.output, want[i].answer.output);
      EXPECT_EQ(got[i].answer.emax, want[i].answer.emax);
      EXPECT_EQ(got[i].answer.confidence, want[i].answer.confidence);
    }
  };
  ExpectSameRows(out_a.rows, want_a);
  ExpectSameRows(out_b.rows, want_b);

  // (b) disjoint per-query counters: each scope saw exactly its own
  // sequences, even though both batches drained on the same workers.
  EXPECT_EQ(out_a.sequences, 4);
  EXPECT_EQ(out_b.sequences, 2);

  // (c) correctly parented span trees, one per query.
  ASSERT_NE(out_a.qid, out_b.qid);
  std::vector<TraceEvent> events = obs::Tracer::Global().Events();
  EXPECT_GT(ExpectParentedUnderRoot(events, out_a.qid, out_a.root), 0);
  EXPECT_GT(ExpectParentedUnderRoot(events, out_b.qid, out_b.root), 0);
}

}  // namespace
}  // namespace tms

#endif  // TMS_OBS_ACTIVE
