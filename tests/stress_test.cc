// Moderate-scale smoke tests: the polynomial algorithms must complete on
// instances far beyond brute-force reach (no timing assertions — the
// assertions are completion plus internal-consistency invariants that do
// not need ground truth).

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "tms.h"

namespace tms {
namespace {

TEST(StressTest, DeterministicPipelineAtN150) {
  const uint64_t seed = testing::TestSeed(1101);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(4, 150, 3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 4;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);

  auto eval = query::Evaluator::Create(&mu, &t);
  ASSERT_TRUE(eval.ok());
  auto topk = eval->TopK(5);
  ASSERT_TRUE(topk.ok());
  ASSERT_FALSE(topk->empty());
  double prev = 1e300;
  double conf_sum = 0;
  for (const query::AnswerInfo& info : *topk) {
    EXPECT_LE(info.emax, prev + 1e-15);
    prev = info.emax;
    EXPECT_LE(info.emax, info.confidence + 1e-15);
    conf_sum += info.confidence;
  }
  EXPECT_LE(conf_sum, 1.0 + 1e-9);  // disjoint answers partition the mass
}

TEST(StressTest, IndexedExtractionAtN1000) {
  const uint64_t seed = testing::TestSeed(1103);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  std::string line = workload::MakeFormLine("verylongname", 1000, rng);
  workload::OcrConfig ocr;
  auto mu = workload::OcrSequence(line, ocr);
  ASSERT_TRUE(mu.ok());
  auto p = workload::NameExtractor();
  ASSERT_TRUE(p.ok());
  auto results = projector::TopKIndexed(*mu, *p, 50);
  ASSERT_FALSE(results.empty());
  double prev = 1e300;
  for (const auto& r : results) {
    EXPECT_LE(r.confidence, prev + 1e-15);
    prev = r.confidence;
    EXPECT_GT(r.confidence, 0.0);
  }
}

TEST(StressTest, UnrankedEnumerationKeepsConstantDelayAtN300) {
  const uint64_t seed = testing::TestSeed(1107);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 300, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  query::UnrankedEnumerator it(mu, t);
  int64_t prev_calls = 0;
  for (int i = 0; i < 50; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    // Poly-delay invariant: per-answer oracle calls bounded by O(L·|Δ|).
    EXPECT_LE(it.oracle_calls() - prev_calls, 2 * 300 * 2 + 4);
    prev_calls = it.oracle_calls();
  }
}

TEST(StressTest, EventSeriesAndConditioningAtN2000) {
  const uint64_t seed = testing::TestSeed(1109);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 2000, 2, rng);
  auto dfa = automata::CompileRegexToDfa(mu.nodes(), ". * n2 . *");
  ASSERT_TRUE(dfa.ok());
  auto series = db::EventFiredSeries(mu, *dfa);
  ASSERT_EQ(series.size(), 2000u);
  for (size_t t = 1; t < series.size(); ++t) {
    ASSERT_GE(series[t] + 1e-12, series[t - 1]);
  }
  if (series.back() > 0 && series.back() < 1) {
    auto conditioned = markov::ConditionOnAcceptance(mu, *dfa);
    ASSERT_TRUE(conditioned.ok());
    EXPECT_NEAR(conditioned->event_probability, series.back(), 1e-9);
  }
}

TEST(StressTest, BigIntFactorialRoundTrip) {
  // 300! has 615 digits; divide it back down to verify long arithmetic at
  // scale.
  numeric::BigInt factorial(1);
  for (int i = 2; i <= 300; ++i) factorial *= numeric::BigInt(i);
  EXPECT_EQ(factorial.ToString().size(), 615u);
  numeric::BigInt back = factorial;
  for (int i = 300; i >= 2; --i) {
    EXPECT_TRUE((back % numeric::BigInt(i)).IsZero());
    back /= numeric::BigInt(i);
  }
  EXPECT_EQ(back, numeric::BigInt(1));
}

}  // namespace
}  // namespace tms
