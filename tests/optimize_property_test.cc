// Property-based fuzzer for the offline DFA minimization pass
// (optimize/minimize.h): random NFAs are determinized, minimized, and the
// result is checked for LANGUAGE EQUIVALENCE against the unminimized DFA
// by product-automaton emptiness — L(m) \ L(d) = ∅ and L(d) \ L(m) = ∅ —
// plus the independent Equivalent() oracle, random-string sampling,
// idempotence, and a size cross-check against the automata-layer
// Minimize(). TMS_TEST_SEED-replayable; labeled `robustness` so
// tools/ci_verify.sh runs it under the sanitizer sweeps.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "automata/ops.h"
#include "common/rng.h"
#include "optimize/minimize.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

// A random NFA over `sigma` symbols: every (state, symbol) pair gets a
// Poisson-ish number of targets, acceptance is a coin per state. Such
// machines are frequently partial (stuck = reject) and nondeterministic,
// so determinization introduces the sink/subset states minimization must
// collapse again.
automata::Nfa RandomNfa(Rng& rng, int sigma, int states) {
  Alphabet ab = workload::MakeSymbols(sigma, "a");
  automata::Nfa nfa(ab, states);
  nfa.SetInitial(0);
  bool any_accepting = false;
  for (int q = 0; q < states; ++q) {
    if (rng.Bernoulli(0.4)) {
      nfa.SetAccepting(q);
      any_accepting = true;
    }
    for (int s = 0; s < sigma; ++s) {
      while (rng.Bernoulli(0.55)) {
        nfa.AddTransition(q, s,
                          static_cast<automata::StateId>(
                              rng.UniformInt(0, states - 1)));
      }
    }
  }
  if (!any_accepting) nfa.SetAccepting(static_cast<automata::StateId>(
      rng.UniformInt(0, states - 1)));
  return nfa;
}

Str RandomString(Rng& rng, int sigma, int max_len) {
  Str s;
  const int len = static_cast<int>(rng.UniformInt(0, max_len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<Symbol>(rng.UniformInt(0, sigma - 1)));
  }
  return s;
}

TEST(OptimizePropertyTest, MinimizedDfaAcceptsExactlyTheSameLanguage) {
  const uint64_t seed = testing::TestSeed(27201);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const int sigma = static_cast<int>(rng.UniformInt(1, 3));
    const int states = static_cast<int>(rng.UniformInt(1, 6));
    automata::Nfa nfa = RandomNfa(rng, sigma, states);
    automata::Dfa d = automata::Determinize(nfa);
    automata::Dfa m = optimize::MinimizeDfa(d);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": |nfa|=" +
                 std::to_string(states) + " |dfa|=" +
                 std::to_string(d.num_states()) + " |min|=" +
                 std::to_string(m.num_states()));

    // Language equivalence by product emptiness, both directions: any
    // string in the symmetric difference would be a reachable accepting
    // state of a diff product.
    EXPECT_TRUE(
        automata::IsEmpty(automata::Product(m, d, automata::BoolOp::kDiff)
                              .ToNfa()));
    EXPECT_TRUE(
        automata::IsEmpty(automata::Product(d, m, automata::BoolOp::kDiff)
                              .ToNfa()));
    // The independent oracle agrees...
    EXPECT_TRUE(automata::Equivalent(d, m));
    // ...and so does direct sampling, against the ORIGINAL NFA.
    for (int i = 0; i < 20; ++i) {
      Str s = RandomString(rng, sigma, 2 * states + 2);
      EXPECT_EQ(m.Accepts(s), nfa.Accepts(s))
          << "string of length " << s.size();
    }

    // Minimality: no more states than the input, exactly as many as the
    // automata-layer Hopcroft (two implementations, one canonical size),
    // and a second pass has nothing left to merge.
    EXPECT_LE(m.num_states(), d.num_states());
    EXPECT_EQ(m.num_states(), automata::Minimize(d).num_states());
    EXPECT_EQ(optimize::MinimizeDfa(m).num_states(), m.num_states());
  }
}

TEST(OptimizePropertyTest, MinimizeCollapsesRedundantStates) {
  // k copies of the same chain glued at a shared accepting state minimize
  // to the single chain — a case where the reduction is large and the
  // expected size is known exactly.
  Alphabet ab = workload::MakeSymbols(1, "a");
  automata::Nfa nfa(ab, 7);
  nfa.SetInitial(0);
  // Two parallel length-3 a-chains 0→{1,4}→{2,5}→{3,6}, both ends accept.
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 0, 2);
  nfa.AddTransition(2, 0, 3);
  nfa.AddTransition(0, 0, 4);
  nfa.AddTransition(4, 0, 5);
  nfa.AddTransition(5, 0, 6);
  nfa.SetAccepting(3);
  nfa.SetAccepting(6);
  automata::Dfa d = automata::Determinize(nfa);
  automata::Dfa m = optimize::MinimizeDfa(d);
  // L = {aaa}: states for 0,1,2,3 symbols read, plus the sink.
  EXPECT_EQ(m.num_states(), 5);
  EXPECT_TRUE(automata::Equivalent(d, m));
  Str aaa = {0, 0, 0};
  EXPECT_TRUE(m.Accepts(aaa));
}

TEST(OptimizePropertyTest, MinimizeHandlesDegenerateLanguages) {
  Alphabet ab = workload::MakeSymbols(2, "a");
  // Empty language: no accepting state at all.
  automata::Nfa empty(ab, 3);
  empty.SetInitial(0);
  empty.AddTransition(0, 0, 1);
  empty.AddTransition(1, 1, 2);
  automata::Dfa d_empty = optimize::MinimizeDfa(automata::Determinize(empty));
  EXPECT_EQ(d_empty.num_states(), 1);
  EXPECT_TRUE(automata::IsEmpty(d_empty.ToNfa()));

  // Universal language: every state accepts.
  automata::Nfa all(ab, 2);
  all.SetInitial(0);
  for (int q = 0; q < 2; ++q) {
    all.SetAccepting(q);
    for (int s = 0; s < 2; ++s) {
      all.AddTransition(q, s, 1 - q);
    }
  }
  automata::Dfa d_all = optimize::MinimizeDfa(automata::Determinize(all));
  EXPECT_EQ(d_all.num_states(), 1);
  EXPECT_TRUE(d_all.AcceptsEmpty());
}

}  // namespace
}  // namespace tms
