// db::BatchEvaluator edge and error behavior: empty collections, the
// minimal (length-1) sequence, a sequence failing mid-batch via an
// injected fault, and shared RunContext limits across a batch. The
// EvaluateAll contract under test: one sequence's failure or truncation
// NEVER aborts the batch — every sequence comes back with its own Status.
// Part of `ctest -L robustness`.

#include "db/batch_evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/collection.h"
#include "exec/fault.h"
#include "exec/run_context.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

transducer::Transducer CopyQuery(const Alphabet& input, Rng& rng) {
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.max_emission = 1;
  opts.density = 1.2;
  return workload::RandomTransducer(input, opts, rng);
}

db::SequenceCollection SmallCollection(Rng& rng, int count) {
  markov::MarkovSequence seed = workload::RandomMarkovSequence(2, 3, 2, rng);
  db::SequenceCollection collection(seed.nodes());
  EXPECT_TRUE(collection.Insert("seq-0", seed).ok());
  for (int i = 1; i < count; ++i) {
    EXPECT_TRUE(collection
                    .Insert("seq-" + std::to_string(i),
                            workload::RandomMarkovSequence(2, 3, 2, rng))
                    .ok());
  }
  return collection;
}

class BatchEdgeTest : public ::testing::Test {
 protected:
  void TearDown() override { exec::FaultInjector::Global().Reset(); }
};

TEST_F(BatchEdgeTest, EmptyCollectionYieldsEmptyResults) {
  Rng rng(4501);
  Alphabet nodes = workload::MakeSymbols(2);
  db::SequenceCollection collection(nodes);
  transducer::Transducer t = CopyQuery(nodes, rng);
  auto batch = db::BatchEvaluator::Create(&collection, &t);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->EvaluateAll(3).empty());
  auto rows = batch->TopKPerSequence(3);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(BatchEdgeTest, MinimalLengthOneSequenceEvaluates) {
  // The shortest legal Markov sequence: one position, no transitions
  // (length = transitions + 1). The batch layer must treat it like any
  // other sequence.
  Rng rng(4502);
  Alphabet nodes = workload::MakeSymbols(2);
  auto mu = markov::MarkovSequence::Create(nodes, {0.75, 0.25}, {});
  ASSERT_TRUE(mu.ok()) << mu.status();
  db::SequenceCollection collection(nodes);
  ASSERT_TRUE(collection.Insert("tiny", *mu).ok());
  transducer::Transducer t = CopyQuery(nodes, rng);
  auto batch = db::BatchEvaluator::Create(&collection, &t);
  ASSERT_TRUE(batch.ok());
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].key, "tiny");
  EXPECT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_FALSE(results[0].truncated);
  // Ground truth agrees with whatever came out.
  auto truth = testing::BruteForceAnswers(*mu, t);
  EXPECT_EQ(results[0].answers.size(), std::min<size_t>(5, truth.size()));
  for (const query::AnswerInfo& info : results[0].answers) {
    EXPECT_TRUE(truth.count(info.output));
  }
}

TEST_F(BatchEdgeTest, OneFailingSequenceDoesNotAbortTheBatch) {
  Rng rng(4503);
  db::SequenceCollection collection = SmallCollection(rng, 4);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  db::BatchEvaluator::Options options;
  options.threads = 1;  // deterministic hit order: key order
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  ASSERT_TRUE(batch.ok());
  // Unfaulted reference run.
  std::vector<db::BatchEvaluator::SequenceResult> want = batch->EvaluateAll(3);
  ASSERT_EQ(want.size(), 4u);
  for (const auto& r : want) ASSERT_TRUE(r.status.ok());

  // Fail the 2nd sequence's batch gate; with threads=1 the hits arrive in
  // key order, so "seq-1" is the victim.
  exec::FaultInjector::Global().ScheduleFailure("batch.pre_sequence",
                                                /*nth_hit=*/2);
  std::vector<db::BatchEvaluator::SequenceResult> got = batch->EvaluateAll(3);
  exec::FaultInjector::Global().Reset();
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key);
    if (got[i].key == "seq-1") {
      EXPECT_EQ(got[i].status.code(), StatusCode::kInternal);
      EXPECT_TRUE(got[i].answers.empty());
      continue;
    }
    // Every other sequence is untouched — same answers as the clean run.
    EXPECT_TRUE(got[i].status.ok()) << got[i].status;
    ASSERT_EQ(got[i].answers.size(), want[i].answers.size());
    for (size_t j = 0; j < got[i].answers.size(); ++j) {
      EXPECT_EQ(got[i].answers[j].output, want[i].answers[j].output);
      EXPECT_EQ(got[i].answers[j].emax, want[i].answers[j].emax);
    }
  }
}

TEST_F(BatchEdgeTest, FirstSequenceFailureLeavesTheRestAndTheCacheIntact) {
  // The very first sequence failing is the adversarial spot for the
  // status-isolation contract: every later sequence rides the shared
  // CompositionCache that the victim helped warm on the previous run,
  // and the merge must not assume index 0 succeeded.
  obs::SetEnabled(true);
  Rng rng(4507);
  db::SequenceCollection collection = SmallCollection(rng, 4);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  db::BatchEvaluator::Options options;
  options.threads = 1;  // deterministic hit order: key order
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  ASSERT_TRUE(batch.ok());

  // Clean run: warms the batch's shared composition cache.
  std::vector<db::BatchEvaluator::SequenceResult> want = batch->EvaluateAll(3);
  ASSERT_EQ(want.size(), 4u);
  for (const auto& r : want) ASSERT_TRUE(r.status.ok());

#if TMS_OBS_ACTIVE
  const int64_t hits_before =
      obs::Registry::Global().counter("cache.hits").value();
  const int64_t misses_before =
      obs::Registry::Global().counter("cache.misses").value();
#endif

  // With threads=1 the first hit is the first key: "seq-0" is the victim.
  exec::FaultInjector::Global().ScheduleFailure("batch.pre_sequence",
                                                /*nth_hit=*/1);
  std::vector<db::BatchEvaluator::SequenceResult> got = batch->EvaluateAll(3);
  exec::FaultInjector::Global().Reset();

  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].key, "seq-0");
  EXPECT_EQ(got[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(got[0].answers.empty());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key);
    EXPECT_TRUE(got[i].status.ok()) << got[i].status;
    ASSERT_EQ(got[i].answers.size(), want[i].answers.size());
    for (size_t j = 0; j < got[i].answers.size(); ++j) {
      EXPECT_EQ(got[i].answers[j].output, want[i].answers[j].output);
      EXPECT_EQ(got[i].answers[j].emax, want[i].answers[j].emax);
    }
  }

#if TMS_OBS_ACTIVE
  // The survivors reused the warm cache: hits grew, nothing was
  // recomputed. A miss here would mean the failure path invalidated or
  // bypassed shared state.
  EXPECT_GT(obs::Registry::Global().counter("cache.hits").value(),
            hits_before);
  EXPECT_EQ(obs::Registry::Global().counter("cache.misses").value(),
            misses_before);
#endif
}

TEST_F(BatchEdgeTest, SharedBudgetTruncatesLaterSequencesNotTheBatch) {
  Rng rng(4504);
  db::SequenceCollection collection = SmallCollection(rng, 4);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  db::BatchEvaluator::Options options;
  options.threads = 1;
  exec::RunContext run;
  run.set_work_budget(3);  // far less than 4 sequences need
  options.run = &run;
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  ASSERT_TRUE(batch.ok());
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(3);
  ASSERT_EQ(results.size(), 4u);  // the batch always completes
  bool saw_budget_stop = false;
  for (const auto& r : results) {
    if (r.status.code() == StatusCode::kBudgetExhausted) {
      saw_budget_stop = true;
      EXPECT_TRUE(r.truncated);
      EXPECT_EQ(r.reason, exec::StopReason::kBudget);
    } else {
      EXPECT_TRUE(r.status.ok()) << r.status;
    }
  }
  EXPECT_TRUE(saw_budget_stop);
  EXPECT_LE(run.work_charged(), 3);
}

TEST_F(BatchEdgeTest, ParentAnswerCapAppliesPerSequence) {
  Rng rng(4505);
  db::SequenceCollection collection = SmallCollection(rng, 3);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  db::BatchEvaluator::Options options;
  options.threads = 2;
  exec::RunContext run;
  run.set_max_answers(1);
  options.run = &run;
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  ASSERT_TRUE(batch.ok());
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(/*k=*/5);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.key << ": " << r.status;
    EXPECT_LE(r.answers.size(), 1u) << r.key;
  }
}

TEST_F(BatchEdgeTest, CancellationStopsEverySequenceCleanly) {
  Rng rng(4506);
  db::SequenceCollection collection = SmallCollection(rng, 4);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  db::BatchEvaluator::Options options;
  options.threads = 2;
  exec::RunContext run;
  run.RequestCancel();  // cancelled before the batch even starts
  options.run = &run;
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  ASSERT_TRUE(batch.ok());
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(3);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.key;
    EXPECT_TRUE(r.answers.empty()) << r.key;
  }
}

TEST_F(BatchEdgeTest, EvaluateAllMatchesTopKPerSequenceWhenUnbounded) {
  Rng rng(4507);
  db::SequenceCollection collection = SmallCollection(rng, 3);
  transducer::Transducer t = CopyQuery(collection.nodes(), rng);
  auto batch = db::BatchEvaluator::Create(&collection, &t);
  ASSERT_TRUE(batch.ok());
  auto rows = batch->TopKPerSequence(3);
  ASSERT_TRUE(rows.ok());
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(3);
  size_t row = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.truncated);
    for (const query::AnswerInfo& info : r.answers) {
      ASSERT_LT(row, rows->size());
      EXPECT_EQ((*rows)[row].key, r.key);
      EXPECT_EQ((*rows)[row].answer.output, info.output);
      EXPECT_EQ((*rows)[row].answer.emax, info.emax);
      ++row;
    }
  }
  EXPECT_EQ(row, rows->size());
}

}  // namespace
}  // namespace tms
