#include <gtest/gtest.h>

#include "common/rng.h"
#include "transducer/classes.h"
#include "transducer/compose.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::transducer {
namespace {

Alphabet Binary() { return *Alphabet::FromNames({"0", "1"}); }

// Nondeterministic transducer: copies the input, or replaces each 1 by ε
// (two parallel branches from the start).
Transducer CopyOrDrop() {
  Alphabet ab = Binary();
  Transducer t(ab, ab, 3);  // 0 = start, 1 = copy branch, 2 = drop branch
  t.SetInitial(0);
  t.SetAllAccepting();
  EXPECT_TRUE(t.AddTransition(0, 0, 1, {0}).ok());
  EXPECT_TRUE(t.AddTransition(0, 1, 1, {1}).ok());
  EXPECT_TRUE(t.AddTransition(0, 0, 2, {0}).ok());
  EXPECT_TRUE(t.AddTransition(0, 1, 2, {}).ok());
  EXPECT_TRUE(t.AddTransition(1, 0, 1, {0}).ok());
  EXPECT_TRUE(t.AddTransition(1, 1, 1, {1}).ok());
  EXPECT_TRUE(t.AddTransition(2, 0, 2, {0}).ok());
  EXPECT_TRUE(t.AddTransition(2, 1, 2, {}).ok());
  return t;
}

TEST(TransducerTest, DeterministicEmissionEnforced) {
  Alphabet ab = Binary();
  Transducer t(ab, ab, 2);
  ASSERT_TRUE(t.AddTransition(0, 0, 1, {0}).ok());
  // Re-adding with the same output is fine; a different output is not.
  EXPECT_TRUE(t.AddTransition(0, 0, 1, {0}).ok());
  EXPECT_FALSE(t.AddTransition(0, 0, 1, {1}).ok());
  // A different target is a distinct transition and may carry another
  // output (nondeterminism with deterministic emission).
  EXPECT_TRUE(t.AddTransition(0, 0, 0, {1}).ok());
}

TEST(TransducerTest, TransduceAllEnumeratesRunOutputs) {
  Transducer t = CopyOrDrop();
  auto outs = t.TransduceAll({0, 1, 1});
  // Copy branch: 011; drop branch: 0.
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], (Str{0}));
  EXPECT_EQ(outs[1], (Str{0, 1, 1}));
  EXPECT_TRUE(t.Transduces({0, 1, 1}, {0}));
  EXPECT_TRUE(t.Transduces({0, 1, 1}, {0, 1, 1}));
  EXPECT_FALSE(t.Transduces({0, 1, 1}, {1}));
}

TEST(TransducerTest, TransduceDeterministic) {
  Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& in = fig2.input_alphabet();
  Str world = *ParseStr(in, "r1a la la r1a r2a");
  auto out = fig2.TransduceDeterministic(world);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(FormatStrCompact(fig2.output_alphabet(), *out), "12");
  // Rejected string (never visits the lab).
  EXPECT_FALSE(
      fig2.TransduceDeterministic(*ParseStr(in, "r1a r1a r2b r1b r1b"))
          .has_value());
}

TEST(TransducerTest, Classification) {
  Transducer fig2 = workload::Figure2Transducer();
  ClassInfo info = Classify(fig2);
  EXPECT_TRUE(info.deterministic);
  EXPECT_TRUE(info.selective);
  EXPECT_FALSE(info.uniform_k.has_value());
  EXPECT_FALSE(info.mealy);
  EXPECT_FALSE(info.projector);
  EXPECT_EQ(info.FinestClass(), TransducerClass::kDeterministic);

  Transducer nd = CopyOrDrop();
  ClassInfo nd_info = Classify(nd);
  EXPECT_FALSE(nd_info.deterministic);
  EXPECT_FALSE(nd_info.selective);
  EXPECT_TRUE(nd_info.projector);
  EXPECT_EQ(nd_info.FinestClass(), TransducerClass::kGeneral);
}

TEST(TransducerTest, MakeMealy) {
  Alphabet in = Binary();
  Alphabet out = *Alphabet::FromNames({"x", "y"});
  auto mealy = MakeMealy(in, out, {{0, 0}}, {{0, 1}});
  ASSERT_TRUE(mealy.ok());
  EXPECT_TRUE(mealy->IsMealy());
  EXPECT_EQ(mealy->UniformEmissionLength(), std::optional<int>(1));
  auto o = mealy->TransduceDeterministic({0, 1, 1});
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(*o, (Str{0, 1, 1}));
}

TEST(TransducerTest, UniformEmissionLength) {
  Alphabet ab = Binary();
  Transducer t(ab, ab, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {0, 0}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {1, 1}).ok());
  EXPECT_EQ(t.UniformEmissionLength(), std::optional<int>(2));
  Transducer empty(ab, ab, 1);
  EXPECT_EQ(empty.UniformEmissionLength(), std::optional<int>(0));
}

TEST(TransducerTest, InputNfaProjection) {
  Transducer fig2 = workload::Figure2Transducer();
  automata::Nfa nfa = fig2.InputNfa();
  const Alphabet& in = fig2.input_alphabet();
  EXPECT_TRUE(nfa.Accepts(*ParseStr(in, "r1a la la r1a r2a")));
  EXPECT_FALSE(nfa.Accepts(*ParseStr(in, "r1a r1a r2b r1b r1b")));
  EXPECT_TRUE(nfa.IsDeterministic());
}

TEST(ComposeTest, OutputConstraintFiltersAnswers) {
  Transducer t = CopyOrDrop();
  // Constraint: outputs starting with "0 1".
  ranking::OutputConstraint c;
  c.prefix = {0, 1};
  Transducer composed = ComposeWithOutputConstraint(t, c);
  // Input 011: outputs {0, 011}; only 011 satisfies the constraint.
  auto outs = composed.TransduceAll({0, 1, 1});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], (Str{0, 1, 1}));
  // Input 00: no output matches.
  EXPECT_TRUE(composed.TransduceAll({0, 0}).empty());
}

TEST(ComposeTest, ConstraintWithExclusionAndEquality) {
  Transducer t = CopyOrDrop();
  // Outputs equal to "0" exactly: prefix 0, exclude everything after.
  ranking::OutputConstraint c;
  c.prefix = {0};
  c.excluded_next = {0, 1};
  c.allow_equal = true;
  Transducer composed = ComposeWithOutputConstraint(t, c);
  auto outs = composed.TransduceAll({0, 1, 1});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], (Str{0}));
}

TEST(ComposeTest, PreservesDeterminism) {
  Transducer fig2 = workload::Figure2Transducer();
  ranking::OutputConstraint c;
  c.prefix = {0};  // outputs starting with "1"
  Transducer composed = ComposeWithOutputConstraint(fig2, c);
  EXPECT_TRUE(composed.IsDeterministic());
}

TEST(ComposeTest, RandomizedAgreementWithDirectFiltering) {
  Rng rng(23);
  Alphabet ab = Binary();
  for (int trial = 0; trial < 20; ++trial) {
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.max_emission = 2;
    Transducer t = workload::RandomTransducer(ab, opts, rng);
    ranking::OutputConstraint c;
    if (rng.Bernoulli(0.7)) c.prefix.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    if (rng.Bernoulli(0.3)) c.excluded_next.insert(0);
    c.allow_equal = rng.Bernoulli(0.5);
    Transducer composed = ComposeWithOutputConstraint(t, c);
    for (int bits = 0; bits < 16; ++bits) {
      Str input;
      for (int i = 0; i < 4; ++i) input.push_back((bits >> i) & 1);
      std::vector<Str> expected;
      for (const Str& o : t.TransduceAll(input)) {
        if (c.Admits(o)) expected.push_back(o);
      }
      EXPECT_EQ(composed.TransduceAll(input), expected);
    }
  }
}

TEST(ComposeTest, InputDfaRestriction) {
  Transducer t = CopyOrDrop();
  // Restrict inputs to those starting with 1.
  automata::Dfa starts1(Binary(), 3);
  starts1.SetInitial(0);
  starts1.SetAccepting(1, true);
  starts1.SetTransition(0, 1, 1);
  starts1.SetTransition(0, 0, 2);
  for (Symbol s : {0, 1}) {
    starts1.SetTransition(1, s, 1);
    starts1.SetTransition(2, s, 2);
  }
  Transducer composed = ComposeWithInputDfa(t, starts1);
  EXPECT_FALSE(composed.TransduceAll({0, 1}).empty() &&
               composed.TransduceAll({0, 1}).size() > 0);
  EXPECT_TRUE(composed.TransduceAll({0, 1}).empty());
  EXPECT_FALSE(composed.TransduceAll({1, 0}).empty());
}

TEST(TransducerTest, ValidateCatchesErrors) {
  Alphabet ab = Binary();
  Transducer empty(ab, ab, 0);
  EXPECT_FALSE(empty.Validate().ok());
  Transducer ok(ab, ab, 1);
  EXPECT_TRUE(ok.Validate().ok());
  EXPECT_FALSE(ok.AddTransition(0, 0, 5, {}).ok());   // bad target
  EXPECT_FALSE(ok.AddTransition(0, 9, 0, {}).ok());   // bad symbol
  EXPECT_FALSE(ok.AddTransition(0, 0, 0, {42}).ok()); // bad emission
}

}  // namespace
}  // namespace tms::transducer
