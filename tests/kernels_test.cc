// Differential property tests for the dense semiring kernels: every
// blocked kernel is checked against its kernels::ref:: scalar reference
// over randomized shapes (including 0, 1, and non-multiples of the
// 4-wide block) and adversarial values (-inf rows, denormals). MaxPlus
// and BoolOr must match the reference bit-for-bit; Real and LogSumExp
// within the documented reassociation tolerance. Replay any failure with
// TMS_TEST_SEED=<seed> ./kernels_test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "kernels/arena.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"
#include "test_util.h"

namespace tms::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Documented accuracy contract for rounding semirings (see kernels.h).
constexpr double kRelTol = 1e-12;

// Shapes that exercise the empty, degenerate, sub-block, block-aligned,
// and straddling cases of the 4-wide inner loops.
const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31};

size_t RandomDim(Rng& rng) {
  return kDims[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(std::size(kDims)) - 1))];
}

// A log-domain score: finite in a plausible range, occasionally -inf
// (the MaxPlus/LogSumExp Zero), occasionally denormal-adjacent tiny.
// Never NaN and never -0.0 (rejected by contract / sign-ambiguous).
double RandomScore(Rng& rng) {
  int64_t kind = rng.UniformInt(0, 9);
  if (kind == 0) return -kInf;
  if (kind == 1) return 5e-324 * static_cast<double>(rng.UniformInt(1, 100));
  return (rng.UniformDouble() - 0.5) * 40.0;
}

// A probability-like value for the Real semiring (nonnegative).
double RandomProb(Rng& rng) {
  int64_t kind = rng.UniformInt(0, 9);
  if (kind == 0) return 0.0;
  if (kind == 1) return 5e-324 * static_cast<double>(rng.UniformInt(1, 100));
  return rng.UniformDouble();
}

template <typename SR>
typename SR::Value RandomValue(Rng& rng);
template <>
double RandomValue<MaxPlus>(Rng& rng) { return RandomScore(rng); }
template <>
double RandomValue<LogSumExp>(Rng& rng) { return RandomScore(rng); }
template <>
double RandomValue<Real>(Rng& rng) { return RandomProb(rng); }
template <>
uint8_t RandomValue<BoolOr>(Rng& rng) {
  return static_cast<uint8_t>(rng.UniformInt(0, 1));
}

template <typename SR>
std::vector<typename SR::Value> RandomBuffer(Rng& rng, size_t n) {
  std::vector<typename SR::Value> out(n);
  for (auto& v : out) v = RandomValue<SR>(rng);
  return out;
}

// With probability 1/4, overwrite one row of the buffer with the
// semiring's Zero — the "-inf row" adversarial case for MaxPlus/LSE.
template <typename SR>
void MaybeZeroRow(Rng& rng, std::vector<typename SR::Value>* buf,
                  size_t rows, size_t cols) {
  if (rows == 0 || cols == 0 || rng.UniformInt(0, 3) != 0) return;
  size_t r = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(rows) - 1));
  for (size_t c = 0; c < cols; ++c) (*buf)[r * cols + c] = SR::Zero();
}

template <typename SR>
void ExpectMatch(const typename SR::Value& got, const typename SR::Value& want,
                 const char* what) {
  if constexpr (SR::kExactReorder) {
    // Bit-for-bit: memcmp-grade equality (covers -inf == -inf; NaN is
    // excluded by the input contract).
    EXPECT_EQ(got, want) << what;
  } else {
    if (std::isinf(want)) {
      EXPECT_EQ(got, want) << what;
    } else {
      EXPECT_NEAR(got, want, kRelTol * (1.0 + std::fabs(want))) << what;
    }
  }
}

template <typename SR>
void RunDifferentialSweep(uint64_t seed, int trials) {
  Rng rng(seed);
  using V = typename SR::Value;
  for (int trial = 0; trial < trials; ++trial) {
    const size_t m = RandomDim(rng), n = RandomDim(rng), K = RandomDim(rng);

    // Gemv: y = A ⊕⊗ x, A m×n.
    {
      auto a = RandomBuffer<SR>(rng, m * n);
      MaybeZeroRow<SR>(rng, &a, m, n);
      auto x = RandomBuffer<SR>(rng, n);
      std::vector<V> got(m), want(m);
      Matrix<V> am(a.data(), m, n);
      Vector<V> xv(x.data(), n), gv(got.data(), m), wv(want.data(), m);
      Gemv<SR>(am, xv, &gv);
      ref::Gemv<SR>(am, xv, &wv);
      for (size_t i = 0; i < m; ++i) ExpectMatch<SR>(got[i], want[i], "Gemv");
    }

    // GemvT: y = Aᵀ ⊕⊗ x, A m×n.
    {
      auto a = RandomBuffer<SR>(rng, m * n);
      auto x = RandomBuffer<SR>(rng, m);
      std::vector<V> got(n), want(n);
      Matrix<V> am(a.data(), m, n);
      Vector<V> xv(x.data(), m), gv(got.data(), n), wv(want.data(), n);
      GemvT<SR>(am, xv, &gv);
      ref::GemvT<SR>(am, xv, &wv);
      for (size_t j = 0; j < n; ++j) {
        ExpectMatch<SR>(got[j], want[j], "GemvT");
      }
    }

    // GemmTN: C = Aᵀ ⊕⊗ B, A K×m, B K×n, C m×n.
    {
      auto a = RandomBuffer<SR>(rng, K * m);
      auto b = RandomBuffer<SR>(rng, K * n);
      MaybeZeroRow<SR>(rng, &b, K, n);
      std::vector<V> got(m * n), want(m * n);
      Matrix<V> am(a.data(), K, m), bm(b.data(), K, n);
      Matrix<V> gm(got.data(), m, n), wm(want.data(), m, n);
      GemmTN<SR>(am, bm, &gm);
      ref::GemmTN<SR>(am, bm, &wm);
      for (size_t i = 0; i < m * n; ++i) {
        ExpectMatch<SR>(got[i], want[i], "GemmTN");
      }
    }

    // RowReduce: y[i] = ⊕_j A(i,j).
    {
      auto a = RandomBuffer<SR>(rng, m * n);
      MaybeZeroRow<SR>(rng, &a, m, n);
      std::vector<V> got(m), want(m);
      Matrix<V> am(a.data(), m, n);
      Vector<V> gv(got.data(), m), wv(want.data(), m);
      RowReduce<SR>(am, &gv);
      ref::RowReduce<SR>(am, &wv);
      for (size_t i = 0; i < m; ++i) {
        ExpectMatch<SR>(got[i], want[i], "RowReduce");
      }
    }
  }
}

TEST(KernelsDifferentialTest, MaxPlusMatchesReferenceBitwise) {
  const uint64_t seed = testing::TestSeed(7301);
  SCOPED_TRACE(testing::SeedTrace(seed));
  RunDifferentialSweep<MaxPlus>(seed, 200);
}

TEST(KernelsDifferentialTest, LogSumExpWithinTolerance) {
  const uint64_t seed = testing::TestSeed(7302);
  SCOPED_TRACE(testing::SeedTrace(seed));
  RunDifferentialSweep<LogSumExp>(seed, 200);
}

TEST(KernelsDifferentialTest, RealWithinTolerance) {
  const uint64_t seed = testing::TestSeed(7303);
  SCOPED_TRACE(testing::SeedTrace(seed));
  RunDifferentialSweep<Real>(seed, 200);
}

TEST(KernelsDifferentialTest, BoolOrMatchesReferenceExactly) {
  const uint64_t seed = testing::TestSeed(7304);
  SCOPED_TRACE(testing::SeedTrace(seed));
  RunDifferentialSweep<BoolOr>(seed, 200);
}

TEST(KernelsDifferentialTest, MaxPlusArgmaxMatchesReferenceBitwise) {
  const uint64_t seed = testing::TestSeed(7305);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t m = RandomDim(rng), n = RandomDim(rng), K = RandomDim(rng);

    // Fused gemv+argmax. Duplicate values are injected so the
    // smallest-index tie-break is actually exercised.
    {
      auto a = RandomBuffer<MaxPlus>(rng, m * n);
      auto x = RandomBuffer<MaxPlus>(rng, n);
      if (n > 1) {
        for (size_t i = 0; i < m; ++i) {
          if (rng.UniformInt(0, 1) == 0) continue;
          a[i * n + n - 1] = a[i * n];  // tie the last column to the first
          x[n - 1] = x[0];
        }
      }
      MaybeZeroRow<MaxPlus>(rng, &a, m, n);
      std::vector<double> got(m), want(m);
      std::vector<int32_t> garg(m), warg(m);
      Matrix<double> am(a.data(), m, n);
      Vector<double> xv(x.data(), n), gv(got.data(), m), wv(want.data(), m);
      Vector<int32_t> gav(garg.data(), m), wav(warg.data(), m);
      MaxPlusGemvArgmax(am, xv, &gv, &gav);
      ref::MaxPlusGemvArgmax(am, xv, &wv, &wav);
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(got[i], want[i]) << "GemvArgmax value";
        EXPECT_EQ(garg[i], warg[i]) << "GemvArgmax index";
      }
    }

    // Fused TN-gemm+argmax.
    {
      auto a = RandomBuffer<MaxPlus>(rng, K * m);
      auto b = RandomBuffer<MaxPlus>(rng, K * n);
      if (K > 1) {
        // Duplicate a full source row so ties across k occur.
        for (size_t c = 0; c < m; ++c) a[(K - 1) * m + c] = a[c];
        for (size_t c = 0; c < n; ++c) b[(K - 1) * n + c] = b[c];
      }
      std::vector<double> got(m * n), want(m * n);
      std::vector<int32_t> garg(m * n), warg(m * n);
      Matrix<double> am(a.data(), K, m), bm(b.data(), K, n);
      Matrix<double> gm(got.data(), m, n), wm(want.data(), m, n);
      Matrix<int32_t> gam(garg.data(), m, n), wam(warg.data(), m, n);
      MaxPlusGemmTNArgmax(am, bm, &gm, &gam);
      ref::MaxPlusGemmTNArgmax(am, bm, &wm, &wam);
      for (size_t i = 0; i < m * n; ++i) {
        EXPECT_EQ(got[i], want[i]) << "GemmTNArgmax value";
        EXPECT_EQ(garg[i], warg[i]) << "GemmTNArgmax index";
      }
    }
  }
}

TEST(KernelsDifferentialTest, EdgeScatterMatchesScalarReplay) {
  const uint64_t seed = testing::TestSeed(7306);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t rows = RandomDim(rng), cols = RandomDim(rng);
    const size_t dcols = RandomDim(rng);
    if (dcols == 0) continue;  // no valid targets to scatter into
    auto src = RandomBuffer<MaxPlus>(rng, rows * cols);
    // Random CSR: each (r, c) cell gets 0–2 targets.
    std::vector<int32_t> off(rows * cols + 1, 0);
    std::vector<int32_t> tgt;
    for (size_t i = 0; i < rows * cols; ++i) {
      int64_t fanout = rng.UniformInt(0, 2);
      for (int64_t e = 0; e < fanout; ++e) {
        tgt.push_back(static_cast<int32_t>(
            rng.UniformInt(0, static_cast<int64_t>(dcols) - 1)));
      }
      off[i + 1] = static_cast<int32_t>(tgt.size());
    }
    std::vector<double> got(rows * dcols), want(rows * dcols, -kInf);
    Matrix<double> sm(src.data(), rows, cols);
    Matrix<double> gm(got.data(), rows, dcols);
    MaxPlusEdgeScatter(sm, off.data(), tgt.data(), &gm);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        for (int32_t e = off[r * cols + c]; e < off[r * cols + c + 1]; ++e) {
          double& cell = want[r * dcols + static_cast<size_t>(tgt[e])];
          if (src[r * cols + c] > cell) cell = src[r * cols + c];
        }
      }
    }
    for (size_t i = 0; i < rows * dcols; ++i) {
      EXPECT_EQ(got[i], want[i]) << "EdgeScatter cell " << i;
    }
  }
}

TEST(KernelsTest, HasNaNDetectsOnlyNaN) {
  // NaN inputs are rejected by contract; HasNaN is the detection hook.
  // -inf, +inf, -0.0 and denormals are all legitimate values.
  std::vector<double> clean = {0.0, -0.0, 1.5, -kInf, kInf, 5e-324};
  EXPECT_FALSE(HasNaN(clean.data(), clean.size()));
  clean[3] = std::nan("");
  EXPECT_TRUE(HasNaN(clean.data(), clean.size()));
  EXPECT_FALSE(HasNaN(clean.data(), 0));
}

TEST(KernelsTest, LogSumExpPlusMirrorsLogProb) {
  // The LogSumExp semiring must treat -inf as a true additive identity
  // and never produce NaN from -inf ⊕ -inf.
  EXPECT_EQ(LogSumExp::Plus(-kInf, -kInf), -kInf);
  EXPECT_EQ(LogSumExp::Plus(-kInf, 0.25), 0.25);
  EXPECT_EQ(LogSumExp::Plus(0.25, -kInf), 0.25);
  EXPECT_NEAR(LogSumExp::Plus(std::log(0.3), std::log(0.4)), std::log(0.7),
              1e-12);
  EXPECT_EQ(LogSumExp::Times(-kInf, 1.0), -kInf);
}

TEST(KernelsTest, ArenaResetReusesStorageAndKeepsAlignment) {
  Arena arena;
  double* a = arena.Alloc<double>(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  a[0] = 1.0;
  a[99] = 2.0;
  const size_t used = arena.bytes_in_use();
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  double* b = arena.Alloc<double>(100);
  EXPECT_EQ(a, b);  // same block, no regrowth
  EXPECT_GE(arena.high_water(), used);
  // Growth retires the old block but leaves prior pointers valid within
  // the evaluation (until the next Reset).
  arena.Reset();
  double* c = arena.Alloc<double>(10);
  c[0] = 42.0;
  double* big = arena.Alloc<double>(1 << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(c[0], 42.0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
}

TEST(KernelsTest, MatrixViewsAreRowMajorAndZeroSizeSafe) {
  Arena arena;
  Matrix<double> m(&arena, 3, 5);
  m.Fill(0.5);
  m(1, 4) = 2.0;
  EXPECT_EQ(m.row(1)[4], 2.0);
  EXPECT_EQ(m.data()[1 * 5 + 4], 2.0);
  Matrix<double> empty(&arena, 0, 0);
  empty.Fill(1.0);  // must not touch memory
  Vector<double> ev(&arena, 0);
  ev.Fill(1.0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(ev.size(), 0u);
}

}  // namespace
}  // namespace tms::kernels
