#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "markov/builder.h"
#include "markov/markov_sequence.h"
#include "markov/world_iter.h"
#include "workload/random_models.h"

namespace tms::markov {
namespace {

MarkovSequence TinyChain() {
  MarkovSequenceBuilder b({"x", "y"}, 3);
  b.SetInitial("x", {3, 4});
  b.SetInitial("y", {1, 4});
  b.SetAllTransitions("x", "x", {1, 2});
  b.SetAllTransitions("x", "y", {1, 2});
  b.SetAllTransitions("y", "y", {1, 1});
  auto mu = b.Build();
  EXPECT_TRUE(mu.ok()) << mu.status();
  return std::move(mu).value();
}

TEST(MarkovSequenceTest, BasicAccessors) {
  MarkovSequence mu = TinyChain();
  EXPECT_EQ(mu.length(), 3);
  EXPECT_EQ(mu.nodes().size(), 2u);
  EXPECT_DOUBLE_EQ(mu.Initial(0), 0.75);
  EXPECT_DOUBLE_EQ(mu.Transition(1, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(mu.Transition(2, 1, 1), 1.0);
  EXPECT_TRUE(mu.has_exact());
  EXPECT_EQ(mu.InitialExact(0), numeric::Rational(3, 4));
}

TEST(MarkovSequenceTest, WorldProbabilityEquationOne) {
  MarkovSequence mu = TinyChain();
  // p(x x y) = 3/4 · 1/2 · 1/2.
  EXPECT_DOUBLE_EQ(mu.WorldProbability({0, 0, 1}), 0.75 * 0.5 * 0.5);
  EXPECT_EQ(mu.WorldProbabilityExact({0, 0, 1}),
            numeric::Rational(3, 16));
  // y can never go back to x.
  EXPECT_DOUBLE_EQ(mu.WorldProbability({1, 0, 0}), 0.0);
  EXPECT_NEAR(mu.WorldLogProbability({0, 0, 1}).ToLinear(), 3.0 / 16, 1e-12);
  EXPECT_TRUE(mu.WorldLogProbability({1, 0, 0}).IsZero());
}

TEST(MarkovSequenceTest, WorldsSumToOne) {
  MarkovSequence mu = TinyChain();
  double total = 0;
  int count = 0;
  ForEachWorld(mu, [&](const Str&, double p) {
    total += p;
    ++count;
  });
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Support worlds: xxx, xxy, xyy, yyy.
  EXPECT_EQ(count, 4);
  EXPECT_EQ(mu.CountSupportWorlds().ToString(), "4");

  numeric::Rational exact_total;
  ForEachWorldExact(mu, [&](const Str&, const numeric::Rational& p) {
    exact_total += p;
  });
  EXPECT_EQ(exact_total, numeric::Rational(1));
}

TEST(MarkovSequenceTest, MarginalsMatchBruteForce) {
  Rng rng(3);
  MarkovSequence mu = workload::RandomMarkovSequence(3, 4, 3, rng);
  for (int i = 1; i <= mu.length(); ++i) {
    std::vector<double> expected(mu.nodes().size(), 0.0);
    ForEachWorld(mu, [&](const Str& w, double p) {
      expected[static_cast<size_t>(w[static_cast<size_t>(i - 1)])] += p;
    });
    std::vector<double> got = mu.Marginal(i);
    for (size_t s = 0; s < expected.size(); ++s) {
      EXPECT_NEAR(got[s], expected[s], 1e-10);
    }
  }
}

TEST(MarkovSequenceTest, SamplingFollowsDistribution) {
  MarkovSequence mu = TinyChain();
  Rng rng(99);
  std::map<Str, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ++counts[SampleWorld(mu, rng)];
  for (const auto& [world, count] : counts) {
    double expected = mu.WorldProbability(world);
    EXPECT_NEAR(static_cast<double>(count) / trials, expected, 0.02)
        << FormatStr(mu.nodes(), world);
  }
}

TEST(MarkovSequenceTest, MostLikelyWorld) {
  MarkovSequence mu = TinyChain();
  auto [world, prob] = MostLikelyWorld(mu);
  double best = 0;
  Str best_world;
  ForEachWorld(mu, [&](const Str& w, double p) {
    if (p > best) {
      best = p;
      best_world = w;
    }
  });
  EXPECT_NEAR(prob, best, 1e-12);
  EXPECT_DOUBLE_EQ(mu.WorldProbability(world), best);
}

TEST(MarkovSequenceTest, ValidationRejectsBadDistributions) {
  Alphabet nodes = *Alphabet::FromNames({"x", "y"});
  // Initial does not sum to 1.
  EXPECT_FALSE(MarkovSequence::Create(nodes, {0.5, 0.4}, {}).ok());
  // Negative probability.
  EXPECT_FALSE(MarkovSequence::Create(nodes, {1.5, -0.5}, {}).ok());
  // Wrong matrix size.
  EXPECT_FALSE(MarkovSequence::Create(nodes, {0.5, 0.5}, {{0.5, 0.5}}).ok());
  // Row does not sum to 1.
  EXPECT_FALSE(
      MarkovSequence::Create(nodes, {0.5, 0.5}, {{1, 0, 0.5, 0.4}}).ok());
  // Valid length-1 sequence (no transitions).
  EXPECT_TRUE(MarkovSequence::Create(nodes, {0.5, 0.5}, {}).ok());
  // Empty node set.
  EXPECT_FALSE(MarkovSequence::Create(Alphabet(), {}, {}).ok());
}

TEST(MarkovSequenceTest, ExactValidationRequiresExactSums) {
  Alphabet nodes = *Alphabet::FromNames({"x"});
  EXPECT_TRUE(
      MarkovSequence::CreateExact(nodes, {numeric::Rational(1)}, {}).ok());
  EXPECT_FALSE(
      MarkovSequence::CreateExact(nodes, {numeric::Rational(99, 100)}, {})
          .ok());
}

TEST(BuilderTest, ReportsUnknownNodes) {
  MarkovSequenceBuilder b({"x"}, 2);
  b.SetInitial("nope", {1, 1});
  EXPECT_FALSE(b.Build().ok());

  MarkovSequenceBuilder b2({"x"}, 2);
  b2.SetInitial("x", {1, 1});
  b2.SetTransition(5, "x", "x", {1, 1});  // out of range
  EXPECT_FALSE(b2.Build().ok());
}

TEST(BuilderTest, LengthOne) {
  MarkovSequenceBuilder b({"x", "y"}, 1);
  b.SetInitial("x", {1, 2});
  b.SetInitial("y", {1, 2});
  auto mu = b.Build();
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->length(), 1);
  int worlds = 0;
  ForEachWorld(*mu, [&](const Str& w, double p) {
    EXPECT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(p, 0.5);
    ++worlds;
  });
  EXPECT_EQ(worlds, 2);
}

}  // namespace
}  // namespace tms::markov
