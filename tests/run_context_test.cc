// Unit tests for the bounded-execution primitives: exec::RunContext (the
// deadline / answer-cap / budget / cancellation handle every enumerator
// threads through) and exec::FaultInjector (deterministic fault points).
// The engine-level truncation contract is exercised end to end by
// prefix_consistency_test.cc and cancellation_fuzz_test.cc; this file
// pins the primitive semantics those suites rely on.

#include "exec/run_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/fault.h"

namespace tms::exec {
namespace {

TEST(RunContextTest, DefaultIsUnbounded) {
  RunContext run;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(run.ChargeWork());
    EXPECT_TRUE(run.BeforeAnswer());
    run.CountAnswer();
  }
  EXPECT_FALSE(run.StopRequested());
  EXPECT_FALSE(run.truncated());
  EXPECT_EQ(run.stop_reason(), StopReason::kNone);
  EXPECT_TRUE(run.status().ok());
  EXPECT_EQ(run.answers_emitted(), 100);
  EXPECT_EQ(run.work_charged(), 100);
}

TEST(RunContextTest, AnswerCapLatchesWithOkStatus) {
  RunContext run;
  run.set_max_answers(2);
  EXPECT_TRUE(run.BeforeAnswer());
  run.CountAnswer();
  EXPECT_TRUE(run.BeforeAnswer());
  run.CountAnswer();
  EXPECT_FALSE(run.BeforeAnswer());  // cap reached: latched from here on
  EXPECT_FALSE(run.BeforeAnswer());
  EXPECT_EQ(run.stop_reason(), StopReason::kAnswerCap);
  EXPECT_TRUE(run.truncated());
  // A client-requested cap is not an error.
  EXPECT_TRUE(run.status().ok());
  EXPECT_EQ(run.answers_emitted(), 2);
}

TEST(RunContextTest, ZeroAnswerCapStopsBeforeFirstAnswer) {
  RunContext run;
  run.set_max_answers(0);
  EXPECT_FALSE(run.BeforeAnswer());
  EXPECT_EQ(run.answers_emitted(), 0);
  EXPECT_TRUE(run.truncated());
}

TEST(RunContextTest, WorkBudgetExhausts) {
  RunContext run;
  run.set_work_budget(3);
  EXPECT_TRUE(run.ChargeWork());
  EXPECT_TRUE(run.ChargeWork());
  EXPECT_TRUE(run.ChargeWork());
  EXPECT_FALSE(run.ChargeWork());
  EXPECT_EQ(run.stop_reason(), StopReason::kBudget);
  EXPECT_EQ(run.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(run.truncated());
  // Only successful charges count.
  EXPECT_EQ(run.work_charged(), 3);
  // A budget stop also closes the answer stream.
  EXPECT_FALSE(run.BeforeAnswer());
}

TEST(RunContextTest, MultiUnitChargeRespectsBudget) {
  RunContext run;
  run.set_work_budget(5);
  EXPECT_TRUE(run.ChargeWork(4));
  EXPECT_FALSE(run.ChargeWork(2));  // only 1 unit left
  EXPECT_EQ(run.stop_reason(), StopReason::kBudget);
  EXPECT_EQ(run.work_charged(), 4);
}

TEST(RunContextTest, ExpiredDeadlineStopsImmediately) {
  RunContext run;
  run.set_deadline(RunContext::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(run.has_deadline());
  EXPECT_FALSE(run.ChargeWork());
  EXPECT_EQ(run.stop_reason(), StopReason::kDeadline);
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, FutureDeadlinePermitsWork) {
  RunContext run;
  run.set_deadline_after_ms(60'000);
  EXPECT_TRUE(run.ChargeWork());
  EXPECT_TRUE(run.BeforeAnswer());
  EXPECT_FALSE(run.truncated());
}

TEST(RunContextTest, CancellationFromAnotherThread) {
  RunContext run;
  CancelToken token = run.cancel_token();
  EXPECT_TRUE(run.ChargeWork());
  std::thread canceller([token] { token.Cancel(); });
  canceller.join();
  EXPECT_FALSE(run.ChargeWork());
  EXPECT_EQ(run.stop_reason(), StopReason::kCancelled);
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST(RunContextTest, FirstStopReasonWins) {
  RunContext run;
  run.set_work_budget(1);
  EXPECT_TRUE(run.ChargeWork());
  EXPECT_FALSE(run.ChargeWork());  // latches kBudget
  run.RequestCancel();             // later cancellation must not overwrite
  EXPECT_FALSE(run.ChargeWork());
  EXPECT_EQ(run.stop_reason(), StopReason::kBudget);
  EXPECT_EQ(run.status().code(), StatusCode::kBudgetExhausted);
}

TEST(RunContextTest, InjectFaultReportsPointInStatus) {
  RunContext run;
  run.InjectFault("lawler.pre_solve");
  EXPECT_EQ(run.stop_reason(), StopReason::kFault);
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().ToString().find("lawler.pre_solve"),
            std::string::npos);
  EXPECT_FALSE(run.ChargeWork());
}

// Regression (TSan): InjectFault used to write stream_->fault_point after
// a non-atomic check of stop_reason(), racing both with a concurrent
// InjectFault and with status() / FlightRecorder::OnTruncation reading
// the string from the thread that latched first. Now only the kFault CAS
// winner publishes the string, so hammering InjectFault from many threads
// while others poll status() must be race-free, and the reported point is
// exactly one of the injected ones.
TEST(RunContextTest, ConcurrentInjectFaultPublishesOnePoint) {
  constexpr int kInjectors = 4;
  constexpr int kReaders = 2;
  for (int round = 0; round < 25; ++round) {
    RunContext run;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kInjectors + kReaders);
    for (int i = 0; i < kInjectors; ++i) {
      threads.emplace_back([&run, &go, i] {
        while (!go.load(std::memory_order_acquire)) {
        }
        run.InjectFault("point." + std::to_string(i));
      });
    }
    for (int i = 0; i < kReaders; ++i) {
      threads.emplace_back([&run, &go] {
        while (!go.load(std::memory_order_acquire)) {
        }
        // Keep reading the status message while the injectors race; the
        // string must never be observed mid-write.
        for (int spin = 0; spin < 64; ++spin) {
          Status status = run.status();
          if (!status.ok()) {
            EXPECT_EQ(status.code(), StatusCode::kInternal);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(run.stop_reason(), StopReason::kFault);
    const std::string message = run.status().ToString();
    int mentioned = 0;
    for (int i = 0; i < kInjectors; ++i) {
      if (message.find("point." + std::to_string(i)) != std::string::npos) {
        ++mentioned;
      }
    }
    EXPECT_EQ(mentioned, 1) << message;
  }
}

TEST(RunContextTest, CopiesAliasTheSameStream) {
  RunContext run;
  run.set_max_answers(1);
  RunContext alias = run;
  EXPECT_TRUE(alias.BeforeAnswer());
  alias.CountAnswer();
  EXPECT_FALSE(run.BeforeAnswer());
  EXPECT_EQ(run.stop_reason(), StopReason::kAnswerCap);
}

TEST(RunContextTest, ChildSharesBudgetButNotAnswerState) {
  RunContext parent;
  parent.set_work_budget(3);
  RunContext a = parent.Child(/*max_answers=*/1);
  RunContext b = parent.Child();
  // The children drain one shared pool...
  EXPECT_TRUE(a.ChargeWork(2));
  EXPECT_TRUE(b.ChargeWork(1));
  EXPECT_FALSE(b.ChargeWork(1));
  EXPECT_EQ(b.stop_reason(), StopReason::kBudget);
  // ...and a drained pool stops every stream of the family at its next
  // boundary (`a` had latched nothing yet) — this is what lets one
  // batch-wide budget bound all sequences.
  EXPECT_EQ(a.stop_reason(), StopReason::kNone);
  EXPECT_FALSE(a.BeforeAnswer());
  EXPECT_EQ(a.stop_reason(), StopReason::kBudget);
  // work_charged aggregates across the family.
  EXPECT_EQ(parent.work_charged(), 3);

  // Answer counts and caps, by contrast, are per stream: in a fresh
  // family (no budget) the capped child stops while its sibling runs on.
  RunContext parent2;
  RunContext capped = parent2.Child(/*max_answers=*/1);
  RunContext open = parent2.Child();
  EXPECT_TRUE(capped.BeforeAnswer());
  capped.CountAnswer();
  EXPECT_FALSE(capped.BeforeAnswer());
  EXPECT_EQ(capped.stop_reason(), StopReason::kAnswerCap);
  EXPECT_TRUE(open.BeforeAnswer());
  EXPECT_EQ(capped.answers_emitted(), 1);
  EXPECT_EQ(open.answers_emitted(), 0);
}

TEST(RunContextTest, ChildSharesCancellation) {
  RunContext parent;
  RunContext child = parent.Child();
  parent.RequestCancel();
  EXPECT_FALSE(child.ChargeWork());
  EXPECT_EQ(child.stop_reason(), StopReason::kCancelled);
}

// The determinism the prefix-consistency argument leans on: under
// concurrent charging, exactly `budget` units succeed — never more,
// regardless of interleaving.
TEST(RunContextTest, ConcurrentChargesNeverOverdraw) {
  constexpr int kThreads = 8;
  constexpr int64_t kBudget = 1000;
  RunContext run;
  run.set_work_budget(kBudget);
  std::atomic<int64_t> succeeded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&run, &succeeded] {
      RunContext local = run;  // handles alias the same pool
      while (local.ChargeWork()) {
        succeeded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), kBudget);
  EXPECT_EQ(run.work_charged(), kBudget);
  EXPECT_EQ(run.stop_reason(), StopReason::kBudget);
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectorTest, DisarmedHitIsFalseAndUncounted) {
  EXPECT_FALSE(TMS_FAULT_POINT("test.point"));
  EXPECT_EQ(FaultInjector::Global().HitCount("test.point"), 0);
  EXPECT_TRUE(FaultInjector::Global().SeenPoints().empty());
}

TEST_F(FaultInjectorTest, ArmCountsHitsWithoutFiring) {
  FaultInjector::Global().Arm();
  EXPECT_FALSE(TMS_FAULT_POINT("test.a"));
  EXPECT_FALSE(TMS_FAULT_POINT("test.a"));
  EXPECT_FALSE(TMS_FAULT_POINT("test.b"));
  EXPECT_EQ(FaultInjector::Global().HitCount("test.a"), 2);
  EXPECT_EQ(FaultInjector::Global().HitCount("test.b"), 1);
  EXPECT_EQ(FaultInjector::Global().SeenPoints(),
            (std::vector<std::string>{"test.a", "test.b"}));
}

TEST_F(FaultInjectorTest, FailureFiresAtExactlyTheNthHit) {
  FaultInjector::Global().ScheduleFailure("test.fail", /*nth_hit=*/3);
  EXPECT_FALSE(TMS_FAULT_POINT("test.fail"));
  EXPECT_FALSE(TMS_FAULT_POINT("test.fail"));
  EXPECT_TRUE(TMS_FAULT_POINT("test.fail"));
  EXPECT_FALSE(TMS_FAULT_POINT("test.fail"));
}

TEST_F(FaultInjectorTest, EveryHitScheduleFiresAlways) {
  FaultInjector::Global().ScheduleFailure("test.always", /*nth_hit=*/0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(TMS_FAULT_POINT("test.always"));
}

TEST_F(FaultInjectorTest, CancelActionFlipsTheToken) {
  CancelToken token;
  FaultInjector::Global().ScheduleCancel("test.cancel", /*nth_hit=*/2, token);
  EXPECT_FALSE(TMS_FAULT_POINT("test.cancel"));
  EXPECT_FALSE(token.cancelled());
  // A cancel action is a side effect, not a simulated failure: Hit stays
  // false and the engine sees the stop at its next RunContext check.
  EXPECT_FALSE(TMS_FAULT_POINT("test.cancel"));
  EXPECT_TRUE(token.cancelled());
}

TEST_F(FaultInjectorTest, CallbackReceivesTheHitIndex) {
  std::vector<int64_t> hits;
  FaultInjector::Global().ScheduleCallback(
      "test.cb", /*nth_hit=*/0, [&hits](int64_t hit) { hits.push_back(hit); });
  EXPECT_FALSE(TMS_FAULT_POINT("test.cb"));
  EXPECT_FALSE(TMS_FAULT_POINT("test.cb"));
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 2}));
}

TEST_F(FaultInjectorTest, DelayActionSleepsTheHit) {
  FaultInjector::Global().ScheduleDelay("test.delay", /*nth_hit=*/1,
                                        std::chrono::milliseconds(20));
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(TMS_FAULT_POINT("test.delay"));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST_F(FaultInjectorTest, ResetDisarmsAndForgets) {
  FaultInjector::Global().ScheduleFailure("test.reset", /*nth_hit=*/1);
  FaultInjector::Global().Reset();
  EXPECT_FALSE(TMS_FAULT_POINT("test.reset"));
  EXPECT_EQ(FaultInjector::Global().HitCount("test.reset"), 0);
}

}  // namespace
}  // namespace tms::exec
