#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(UnrankedEnumTest, RunningExampleAnswerSet) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  std::vector<Str> answers = AllAnswers(mu, fig2);
  auto truth = testing::BruteForceAnswers(mu, fig2);
  ASSERT_EQ(answers.size(), truth.size());
  for (const Str& o : answers) EXPECT_TRUE(truth.count(o));
  // Lexicographic order by symbol id.
  EXPECT_TRUE(std::is_sorted(answers.begin(), answers.end()));
}

TEST(UnrankedEnumTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(97);
  for (int trial = 0; trial < 25; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.max_emission = 2;
    opts.deterministic = rng.Bernoulli(0.5);
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);
    std::vector<Str> answers = AllAnswers(mu, t);
    EXPECT_EQ(answers.size(), truth.size());
    std::set<Str> seen;
    for (const Str& o : answers) {
      EXPECT_TRUE(truth.count(o)) << "phantom answer";
      EXPECT_TRUE(seen.insert(o).second) << "duplicate answer";
    }
    EXPECT_TRUE(std::is_sorted(answers.begin(), answers.end()));
  }
}

TEST(UnrankedEnumTest, StreamingInterfaceAndOracleCount) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  UnrankedEnumerator it(mu, fig2);
  int count = 0;
  int64_t prev_calls = 0;
  while (auto answer = it.Next()) {
    ++count;
    // Poly delay: the oracle-call budget between answers stays bounded
    // (output length ≤ 5, |Δ| = 3 → comfortably under 64 calls).
    EXPECT_LE(it.oracle_calls() - prev_calls, 64);
    prev_calls = it.oracle_calls();
  }
  EXPECT_GT(count, 0);
  EXPECT_FALSE(it.Next().has_value());  // exhausted stays exhausted
}

TEST(UnrankedEnumTest, EmptyAnswerSet) {
  Rng rng(5);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  transducer::Transducer t(mu.nodes(), mu.nodes(), 1);  // no accepting
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {}).ok());
  UnrankedEnumerator it(mu, t);
  EXPECT_FALSE(it.Next().has_value());
}

TEST(EmaxEnumTest, OrderedByEmaxAndComplete) {
  Rng rng(101);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 2;
    opts.max_emission = 2;
    opts.deterministic = rng.Bernoulli(0.5);
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);

    EmaxEnumerator it(mu, t);
    std::vector<ranking::ScoredAnswer> results;
    while (auto answer = it.Next()) results.push_back(*answer);

    ASSERT_EQ(results.size(), truth.size());
    std::set<Str> seen;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(seen.insert(results[i].output).second);
      EXPECT_TRUE(truth.count(results[i].output));
      // Scores are the true E_max values, nonincreasing.
      double expected =
          testing::BruteForceEmax(mu, t, results[i].output);
      EXPECT_NEAR(results[i].score, expected, 1e-9);
      if (i > 0) {
        EXPECT_GE(results[i - 1].score, results[i].score - 1e-12);
      }
    }
  }
}

TEST(EmaxEnumTest, TopKStopsEarly) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto top2 = TopKByEmax(mu, fig2, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_GE(top2[0].score, top2[1].score);
  // Top answer: E_max = 0.3969 (the world s → output 12).
  EXPECT_NEAR(top2[0].score, 0.3969, 1e-12);
  EXPECT_EQ(FormatStrCompact(fig2.output_alphabet(), top2[0].output), "12");
}

TEST(EmaxEnumTest, EmaxOrderIsNotConfidenceOrder) {
  // The heuristic order (Thm 4.3) may disagree with the confidence order —
  // the gap Theorems 4.4/4.5 prove is unavoidable. Build a chain where one
  // answer has one strong evidence world and another has many weak ones.
  Alphabet nodes = *Alphabet::FromNames({"a", "b1", "b2", "b3"});
  // n = 1: initial a = 0.4; b1, b2, b3 = 0.2 each.
  auto mu = markov::MarkovSequence::Create(nodes, {0.4, 0.2, 0.2, 0.2}, {});
  ASSERT_TRUE(mu.ok());
  // Mealy-style map: a → A; b1, b2, b3 → B.
  Alphabet out = *Alphabet::FromNames({"A", "B"});
  transducer::Transducer t(nodes, out, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {0}).ok());
  for (Symbol s : {1, 2, 3}) {
    ASSERT_TRUE(t.AddTransition(0, s, 0, {1}).ok());
  }
  // conf(A) = 0.4 < conf(B) = 0.6, but E_max(A) = 0.4 > E_max(B) = 0.2.
  EmaxEnumerator it(*mu, t);
  auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->output, Str{0});  // "A" ranked first by E_max
  EXPECT_NEAR(first->score, 0.4, 1e-12);
}

}  // namespace
}  // namespace tms::query
