// The shard-equivalence contract (docs/DISTRIBUTED.md): a sharded batch's
// merged ranked stream is BYTE-IDENTICAL to the single-process
// BatchEvaluator reference at every shard count × thread count × kernel
// backend, plus the merge-order property fuzz for the bounded-lookahead
// k-way merge itself (tie clusters, equal-score runs, empty shards,
// order-violating sources).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/client.h"
#include "dist/merge_stream.h"
#include "dist/shard_plan.h"
#include "dist/sharded_batch.h"
#include "gtest/gtest.h"
#include "kernels/backend.h"
#include "serve/wire.h"
#include "test_util.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

namespace tms {
namespace {

using testing::SeedTrace;
using testing::TestSeed;

// One line per ranked row, the same serializer the server and CLI use —
// "byte-identical" means these bytes, not a structural comparison.
std::string SerializeRows(const Alphabet& output,
                          const std::vector<dist::RankedRow>& rows) {
  std::string out;
  for (const dist::RankedRow& row : rows) {
    serve::AppendBatchRowJson(row.key,
                              FormatStr(output, row.answer.output),
                              row.answer.emax, row.answer.confidence, &out);
    out += '\n';
  }
  return out;
}

// A collection with deliberate cross-shard tie clusters: every model is
// inserted twice under different keys, so equal (score, answer) pairs
// exist in different shards at every shard count > 1.
struct Fixture {
  Alphabet alphabet;
  db::SequenceCollection collection{Alphabet()};
  transducer::Transducer query{Alphabet(), Alphabet()};
};

void BuildFixture(uint64_t seed, int distinct_models, Fixture* fx) {
  Rng rng(seed);
  // RandomMarkovSequence interns its nodes under the "n" prefix; the
  // collection's alphabet must match or Insert rejects the sequence.
  fx->alphabet = workload::MakeSymbols(4, "n");
  fx->collection = db::SequenceCollection(fx->alphabet);
  for (int i = 0; i < distinct_models; ++i) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(
        4, static_cast<int>(rng.UniformInt(3, 6)), 3, rng);
    char key[32];
    std::snprintf(key, sizeof(key), "seq%02d", 2 * i);
    ASSERT_TRUE(fx->collection.Insert(key, mu).ok());
    std::snprintf(key, sizeof(key), "seq%02d", 2 * i + 1);
    ASSERT_TRUE(fx->collection.Insert(key, std::move(mu)).ok());
  }
  // A random transducer can have an empty language under an adversarial
  // TMS_TEST_SEED; grafting identity loops onto state 0 guarantees every
  // sequence a nonempty ranked stream while keeping the random structure.
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.max_emission = 1;
  // As many output symbols as input ones, so the identity loops below can
  // emit the input symbol id.
  opts.output_symbols = static_cast<int>(fx->alphabet.size());
  fx->query = workload::RandomTransducer(fx->alphabet, opts, rng);
  fx->query.SetAccepting(0);
  for (Symbol s = 0; s < static_cast<Symbol>(fx->alphabet.size()); ++s) {
    (void)fx->query.AddTransition(0, s, 0, Str{s});
  }
}

TEST(DistEquivalenceTest, ShardedStreamMatchesReferenceEverywhere) {
  const uint64_t seed = TestSeed(20260810);
  SCOPED_TRACE(SeedTrace(seed));
  Fixture fx;
  BuildFixture(seed, 3, &fx);  // 6 sequences; shards=8 leaves empty shards
  const int k = 4;

  db::BatchEvaluator::Options ref_options;
  auto ref_batch =
      db::BatchEvaluator::Create(&fx.collection, &fx.query, ref_options);
  ASSERT_TRUE(ref_batch.ok()) << ref_batch.status().ToString();
  const std::string reference = SerializeRows(
      fx.query.output_alphabet(),
      dist::RankedReferenceRows(ref_batch->EvaluateAll(k)));
  ASSERT_FALSE(reference.empty());

  for (int shards : {1, 2, 4, 8}) {
    for (int threads : {1, 2, 8}) {
      for (kernels::BackendChoice backend :
           {kernels::BackendChoice::kDense, kernels::BackendChoice::kSparse,
            kernels::BackendChoice::kAuto}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) + " backend=" +
                     kernels::BackendChoiceName(backend));
        dist::ShardedBatchOptions options;
        options.shards = shards;
        options.threads = threads;
        options.backend = backend;
        auto sharded =
            dist::EvaluateSharded(fx.collection, fx.query, k, options);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        EXPECT_TRUE(sharded->complete());
        EXPECT_EQ(SerializeRows(fx.query.output_alphabet(), sharded->rows),
                  reference);
        ASSERT_EQ(sharded->coverage.size(), static_cast<size_t>(shards));
        int64_t covered = 0;
        for (const dist::ShardCoverage& c : sharded->coverage) {
          EXPECT_FALSE(c.failed);
          EXPECT_FALSE(c.truncated);
          covered += c.sequences;
        }
        EXPECT_EQ(covered, static_cast<int64_t>(fx.collection.size()));
      }
    }
  }
}

TEST(DistEquivalenceTest, ShardPlanIsContiguousBalancedAndComplete) {
  for (int n : {0, 1, 5, 6, 17}) {
    std::vector<std::string> keys;
    for (int i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
    for (int shards : {1, 2, 4, 8}) {
      std::vector<dist::ShardRange> plan = dist::PlanShards(keys, shards);
      ASSERT_EQ(plan.size(), static_cast<size_t>(shards));
      std::vector<std::string> flattened;
      size_t hi = 0, lo = keys.size();
      for (const dist::ShardRange& range : plan) {
        hi = std::max(hi, range.keys.size());
        lo = std::min(lo, range.keys.size());
        flattened.insert(flattened.end(), range.keys.begin(),
                         range.keys.end());
      }
      // Contiguous + complete: concatenating the ranges reproduces the
      // key list; balanced: sizes differ by at most one.
      EXPECT_EQ(flattened, keys) << "n=" << n << " shards=" << shards;
      EXPECT_LE(hi - lo, 1u) << "n=" << n << " shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Merge-order property fuzz over in-memory sources.

dist::MergeEntry Entry(std::string key, double score) {
  dist::MergeEntry e;
  e.key = std::move(key);
  e.score = score;
  e.answer.emax = score;
  return e;
}

// The expected merged order: concatenate the streams (source order) and
// stable-sort by (score desc, key asc). Keys are unique per source, so
// equal (score, key) entries come from one stream and stability encodes
// the per-source FIFO the merge must preserve.
std::vector<std::pair<std::string, double>> ExpectedOrder(
    const std::vector<std::vector<dist::MergeEntry>>& streams) {
  std::vector<std::pair<std::string, double>> all;
  for (const auto& stream : streams) {
    for (const dist::MergeEntry& e : stream) all.emplace_back(e.key, e.score);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  return all;
}

std::vector<std::pair<std::string, double>> Drain(dist::MergeStream* merge) {
  std::vector<std::pair<std::string, double>> out;
  while (auto e = merge->Next()) out.emplace_back(e->key, e->score);
  return out;
}

std::vector<std::unique_ptr<dist::ShardSource>> MakeSources(
    const std::vector<std::vector<dist::MergeEntry>>& streams) {
  std::vector<std::unique_ptr<dist::ShardSource>> sources;
  for (size_t i = 0; i < streams.size(); ++i) {
    dist::ShardCoverage coverage;
    coverage.shard_id = static_cast<int>(i);
    sources.push_back(
        std::make_unique<dist::VectorShardSource>(streams[i], coverage));
  }
  return sources;
}

TEST(MergeStreamTest, PropertyFuzzPreservesGlobalRankOrder) {
  const uint64_t seed = TestSeed(20260811);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const int num_sources = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<std::vector<dist::MergeEntry>> streams(num_sources);
    for (int s = 0; s < num_sources; ++s) {
      // ~1 in 4 sources is empty; tie clusters come from the coarse score
      // grid (multiples of 1/8 in [0, 2]) shared by every source, and
      // equal-score runs from zero-decrements within a stream.
      if (rng.UniformInt(0, 3) == 0) continue;
      const int keys = static_cast<int>(rng.UniformInt(1, 3));
      double score = static_cast<double>(rng.UniformInt(8, 16)) / 8.0;
      const int entries = static_cast<int>(rng.UniformInt(1, 8));
      for (int e = 0; e < entries; ++e) {
        char key[32];
        std::snprintf(key, sizeof(key), "s%dk%d", s,
                      static_cast<int>(rng.UniformInt(0, keys - 1)));
        streams[s].push_back(Entry(key, score));
        score -= static_cast<double>(rng.UniformInt(0, 2)) / 8.0;
      }
      // A real shard stream is ranked (score desc, key asc); random key
      // picks can violate the key order inside an equal-score run, so
      // normalize. The stable sort keeps duplicate (score, key) entries
      // in arrival order — exactly the per-source FIFO contract.
      std::stable_sort(streams[s].begin(), streams[s].end(),
                       [](const dist::MergeEntry& a,
                          const dist::MergeEntry& b) {
                         if (a.score != b.score) return a.score > b.score;
                         return a.key < b.key;
                       });
    }
    dist::MergeStream merge(MakeSources(streams));
    EXPECT_EQ(Drain(&merge), ExpectedOrder(streams));
    for (const dist::ShardCoverage& c : merge.Coverage()) {
      EXPECT_FALSE(c.failed);
    }
  }
}

TEST(MergeStreamTest, CrossShardTieClusterBreaksByKeyThenFifo) {
  // Three shards, one fat tie at score 0.5 spanning all of them, plus a
  // same-key run inside shard 1 that must stay in arrival order.
  std::vector<std::vector<dist::MergeEntry>> streams = {
      {Entry("b", 0.5), Entry("b", 0.5), Entry("a", 0.25)},
      {Entry("a2", 0.5), Entry("a2", 0.25)},
      {Entry("c", 0.9), Entry("z", 0.5)},
  };
  dist::MergeStream merge(MakeSources(streams));
  const std::vector<std::pair<std::string, double>> expected = {
      {"c", 0.9},  {"a2", 0.5}, {"b", 0.5},   {"b", 0.5},
      {"z", 0.5},  {"a", 0.25}, {"a2", 0.25},
  };
  EXPECT_EQ(Drain(&merge), expected);
  EXPECT_EQ(merge.answers(), 7);
}

TEST(MergeStreamTest, EmptyAndAllEmptySourcesMergeCleanly) {
  std::vector<std::vector<dist::MergeEntry>> streams(3);
  dist::MergeStream empty_merge(MakeSources(streams));
  EXPECT_EQ(Drain(&empty_merge).size(), 0u);
  EXPECT_EQ(empty_merge.Coverage().size(), 3u);

  dist::MergeStream no_sources({});
  EXPECT_FALSE(no_sources.Next().has_value());
}

TEST(MergeStreamTest, OrderViolatingSourceIsClosedWithCleanPrefix) {
  // Shard 0 lies: its third entry's score goes UP. The merge must keep
  // its first two entries, close the stream, and not disturb shard 1.
  std::vector<std::vector<dist::MergeEntry>> streams = {
      {Entry("a", 0.9), Entry("a", 0.5), Entry("a", 0.8), Entry("a", 0.7)},
      {Entry("b", 0.6), Entry("b", 0.4)},
  };
  dist::MergeStream merge(MakeSources(streams));
  const std::vector<std::pair<std::string, double>> expected = {
      {"a", 0.9}, {"b", 0.6}, {"a", 0.5}, {"b", 0.4}};
  EXPECT_EQ(Drain(&merge), expected);
  std::vector<dist::ShardCoverage> coverage = merge.Coverage();
  ASSERT_EQ(coverage.size(), 2u);
  EXPECT_TRUE(coverage[0].failed);
  EXPECT_FALSE(coverage[0].status.ok());
  EXPECT_EQ(coverage[0].answers, 2);
  EXPECT_FALSE(coverage[1].failed);
  EXPECT_EQ(coverage[1].answers, 2);
}

TEST(MergeStreamTest, EqualScoreSameKeyViolationMustNotReorder) {
  // Ties are legal (equal scores), but a key going BACKWARD at equal
  // score would break per-sequence rank order — the merge closes there.
  std::vector<std::vector<dist::MergeEntry>> streams = {
      {Entry("m", 0.5), Entry("z", 0.5), Entry("m", 0.5)},
  };
  dist::MergeStream merge(MakeSources(streams));
  const std::vector<std::pair<std::string, double>> expected = {
      {"m", 0.5}, {"z", 0.5}};
  EXPECT_EQ(Drain(&merge), expected);
  EXPECT_TRUE(merge.Coverage()[0].failed);
}

TEST(WorkerListTest, ParsesHostPortPairs) {
  auto workers = dist::ParseWorkerList("127.0.0.1:80,example.com:8443");
  ASSERT_TRUE(workers.ok()) << workers.status().ToString();
  ASSERT_EQ(workers->size(), 2u);
  EXPECT_EQ((*workers)[0].host, "127.0.0.1");
  EXPECT_EQ((*workers)[0].port, 80);
  EXPECT_EQ((*workers)[1].host, "example.com");
  EXPECT_EQ((*workers)[1].port, 8443);
}

TEST(WorkerListTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(dist::ParseWorkerList("").ok());
  EXPECT_FALSE(dist::ParseWorkerList("no-port").ok());
  EXPECT_FALSE(dist::ParseWorkerList("host:").ok());
  EXPECT_FALSE(dist::ParseWorkerList("host:0").ok());
  EXPECT_FALSE(dist::ParseWorkerList("host:99999").ok());
  EXPECT_FALSE(dist::ParseWorkerList("host:12ab").ok());
  EXPECT_FALSE(dist::ParseWorkerList("a:1,,b:2").ok());
}

TEST(MergeStreamTest, CoverageJsonShapeIsStable) {
  dist::ShardCoverage ok;
  ok.shard_id = 0;
  ok.sequences = 2;
  ok.answers = 5;
  dist::ShardCoverage bad;
  bad.shard_id = 1;
  bad.failed = true;
  bad.status = Status::Internal("boom \"quoted\"");
  EXPECT_EQ(
      dist::CoverageJson({ok, bad}),
      "[{\"shard\":0,\"sequences\":2,\"failed_sequences\":0,\"answers\":5,"
      "\"complete\":true,\"truncated\":false,\"reason\":\"NONE\"},"
      "{\"shard\":1,\"sequences\":0,\"failed_sequences\":0,\"answers\":0,"
      "\"complete\":false,\"truncated\":false,\"reason\":\"NONE\","
      "\"error\":\"INTERNAL: boom \\\"quoted\\\"\"}]");
}

}  // namespace
}  // namespace tms
