// Cross-module integration: full pipelines from raw observations to ranked
// answers, exercising every layer (HMM → posterior Markov sequence →
// transducer / s-projector querying → ranked enumeration → confidence).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "hmm/translate.h"
#include "projector/imax_enum.h"
#include "projector/indexed_enum.h"
#include "projector/sprojector_confidence.h"
#include "query/confidence.h"
#include "query/emax_enum.h"
#include "query/evaluator.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/hospital.h"
#include "workload/random_models.h"
#include "workload/text.h"

namespace tms {
namespace {

TEST(IntegrationTest, HospitalPipelineEndToEnd) {
  // Observations → posterior → place tracker → ranked answers with
  // confidences, all validated against brute force.
  workload::HospitalConfig config;
  config.num_rooms = 1;       // keep the world count brute-forceable
  config.locs_per_place = 1;  // 3 locations total
  Rng rng(307);
  auto scenario = workload::MakeScenario(config, 6, rng);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  transducer::Transducer tracker =
      workload::PlaceTracker(scenario->model.states(), config);

  auto eval = query::Evaluator::Create(&scenario->mu, &tracker);
  ASSERT_TRUE(eval.ok());
  auto topk = eval->TopK(5);
  ASSERT_TRUE(topk.ok());
  ASSERT_FALSE(topk->empty());

  auto truth = testing::BruteForceAnswers(scenario->mu, tracker);
  for (const query::AnswerInfo& info : *topk) {
    ASSERT_TRUE(truth.count(info.output));
    EXPECT_NEAR(info.confidence, truth.at(info.output), 1e-6);
  }
  // E_max scores nonincreasing.
  for (size_t i = 1; i < topk->size(); ++i) {
    EXPECT_GE((*topk)[i - 1].emax, (*topk)[i].emax - 1e-12);
  }
  // The tracker output of the true trajectory is an answer.
  auto true_output =
      tracker.TransduceDeterministic(scenario->true_locations);
  ASSERT_TRUE(true_output.has_value());
  EXPECT_TRUE(truth.count(*true_output));
}

TEST(IntegrationTest, OcrExtractionEndToEnd) {
  // Noisy OCR of a form line; the name extractor's ranked indexed answers
  // must put the true name at (or near) the top and agree with the
  // indexed-confidence computer.
  Rng rng(311);
  std::string line = workload::MakeFormLine("bob", 14, rng);
  workload::OcrConfig ocr;
  ocr.char_accuracy = 0.95;
  ocr.confusion_spread = 1;
  auto mu = workload::OcrSequence(line, ocr);
  ASSERT_TRUE(mu.ok());
  auto p = workload::NameExtractor();
  ASSERT_TRUE(p.ok());

  auto results = projector::TopKIndexed(*mu, *p, 10);
  ASSERT_FALSE(results.empty());
  auto conf = projector::IndexedConfidence::Create(&*mu, &*p);
  ASSERT_TRUE(conf.ok());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(conf->Confidence(results[i].answer), results[i].confidence,
                1e-9);
    if (i > 0) {
      EXPECT_GE(results[i - 1].confidence, results[i].confidence - 1e-12);
    }
  }
  // The true name appears among the extracted answers.
  size_t name_pos = line.find("name:") + 5;
  bool found = false;
  for (const auto& r : results) {
    if (FormatStrCompact(p->alphabet(), r.answer.output) == "bob" &&
        r.answer.index == static_cast<int>(name_pos) + 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IntegrationTest, SProjectorThreeWayConsistency) {
  // On one random instance: (1) the s-projector-as-transducer unranked
  // enumeration, (2) the I_max ranked enumeration, and (3) the brute force
  // all agree on the answer set; confidences agree across the
  // concatenation-DFA algorithm and brute force.
  Rng rng(313);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);
  Alphabet ab = mu.nodes();
  auto p = projector::SProjector::FromRegex(ab, ". *", "n0 n1 *", ". *");
  ASSERT_TRUE(p.ok()) << p.status();
  transducer::Transducer t = p->ToTransducer();

  auto truth = testing::BruteForceSProjectorAnswers(mu, *p);
  std::set<Str> expected;
  for (const auto& [o, c] : truth) expected.insert(o);

  std::set<Str> from_unranked;
  for (const Str& o : query::AllAnswers(mu, t)) from_unranked.insert(o);
  EXPECT_EQ(from_unranked, expected);

  auto imax_it = projector::ImaxEnumerator::Create(&mu, &*p);
  ASSERT_TRUE(imax_it.ok());
  std::set<Str> from_imax;
  while (auto r = imax_it->Next()) from_imax.insert(r->output);
  EXPECT_EQ(from_imax, expected);

  for (const auto& [o, c] : truth) {
    auto conf = projector::SProjectorConfidence(mu, *p, o);
    ASSERT_TRUE(conf.ok());
    EXPECT_NEAR(*conf, c, 1e-9);
  }
}

TEST(IntegrationTest, PosteriorQueriedByFigure2StyleTracker) {
  // HMM posterior + deterministic transducer: Theorem 4.6 confidence of
  // every enumerated answer matches brute force.
  workload::HospitalConfig config;
  config.num_rooms = 1;
  config.locs_per_place = 1;
  Rng rng(317);
  auto scenario = workload::MakeScenario(config, 5, rng);
  ASSERT_TRUE(scenario.ok());
  transducer::Transducer tracker =
      workload::PlaceTracker(scenario->model.states(), config);
  auto answers = query::AllAnswers(scenario->mu, tracker);
  auto truth = testing::BruteForceAnswers(scenario->mu, tracker);
  ASSERT_EQ(answers.size(), truth.size());
  for (const Str& o : answers) {
    auto conf = query::ConfidenceDeterministic(scenario->mu, tracker, o);
    ASSERT_TRUE(conf.ok());
    EXPECT_NEAR(*conf, truth.at(o), 1e-6);
  }
}

}  // namespace
}  // namespace tms
