#include "db/collection.h"

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "common/rng.h"
#include "markov/world_iter.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms::db {
namespace {

SequenceCollection MakeCollection(int count, int n, Rng& rng) {
  Alphabet nodes = workload::MakeSymbols(3, "n");
  SequenceCollection out(nodes);
  for (int i = 0; i < count; ++i) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
    EXPECT_TRUE(out.Insert("seq" + std::to_string(i), std::move(mu)).ok());
  }
  return out;
}

TEST(CollectionTest, InsertGetErase) {
  Rng rng(201);
  SequenceCollection c = MakeCollection(3, 4, rng);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Keys(), (std::vector<std::string>{"seq0", "seq1", "seq2"}));
  ASSERT_TRUE(c.Get("seq1").ok());
  EXPECT_FALSE(c.Get("missing").ok());
  EXPECT_TRUE(c.Erase("seq1"));
  EXPECT_FALSE(c.Erase("seq1"));
  EXPECT_EQ(c.size(), 2u);
}

TEST(CollectionTest, InsertRejectsAlphabetMismatch) {
  Rng rng(203);
  Alphabet nodes = workload::MakeSymbols(3, "n");
  SequenceCollection c(nodes);
  markov::MarkovSequence wrong = workload::RandomMarkovSequence(2, 4, 2, rng);
  EXPECT_FALSE(c.Insert("bad", std::move(wrong)).ok());
}

TEST(CollectionTest, InsertReplaces) {
  Rng rng(205);
  Alphabet nodes = workload::MakeSymbols(3, "n");
  SequenceCollection c(nodes);
  ASSERT_TRUE(
      c.Insert("k", workload::RandomMarkovSequence(3, 4, 2, rng)).ok());
  markov::MarkovSequence longer = workload::RandomMarkovSequence(3, 7, 2, rng);
  ASSERT_TRUE(c.Insert("k", std::move(longer)).ok());
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ((*c.Get("k"))->length(), 7);
}

TEST(CollectionTest, TopKPerSequence) {
  Rng rng(207);
  SequenceCollection c = MakeCollection(3, 4, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.accept_prob = 1.0;
  transducer::Transducer t =
      workload::RandomTransducer(c.nodes(), opts, rng);

  auto rows = c.TopKPerSequence(t, 2);
  ASSERT_TRUE(rows.ok()) << rows.status();
  // Each sequence contributes at most 2 rows, each validated against
  // brute force.
  std::map<std::string, int> per_key;
  for (const auto& row : *rows) {
    ++per_key[row.key];
    auto truth = testing::BruteForceAnswers(**c.Get(row.key), t);
    ASSERT_TRUE(truth.count(row.answer.output));
    EXPECT_NEAR(row.answer.confidence, truth.at(row.answer.output), 1e-9);
  }
  for (const auto& [key, count] : per_key) EXPECT_LE(count, 2);
  EXPECT_EQ(per_key.size(), 3u);
}

TEST(CollectionTest, AcceptanceByKeyRanksSequences) {
  Rng rng(209);
  SequenceCollection c = MakeCollection(4, 4, rng);
  auto dfa = automata::CompileRegexToDfa(c.nodes(), "n0 . *");
  ASSERT_TRUE(dfa.ok());
  auto ranked = c.AcceptanceByKey(*dfa);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].second, (*ranked)[i].second);
  }
  // Each probability equals the sequence's P(S_1 = n0).
  for (const auto& [key, p] : *ranked) {
    auto mu = c.Get(key);
    EXPECT_NEAR(p, (*mu)->Initial(0), 1e-12);
  }
}

TEST(CollectionTest, RankSequencesByAnswer) {
  Rng rng(211);
  SequenceCollection c = MakeCollection(3, 4, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.accept_prob = 1.0;
  transducer::Transducer t =
      workload::RandomTransducer(c.nodes(), opts, rng);
  // Pick some answer from the first sequence.
  auto truth0 = testing::BruteForceAnswers(**c.Get("seq0"), t);
  if (truth0.empty()) GTEST_SKIP();
  const Str answer = truth0.begin()->first;

  auto ranked = c.RankSequencesByAnswer(t, answer);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].second, (*ranked)[i].second);
  }
  for (const auto& [key, conf] : *ranked) {
    EXPECT_NEAR(conf,
                testing::BruteForceConfidence(**c.Get(key), t, answer),
                1e-9);
  }
}

TEST(CollectionTest, QueryAlphabetMismatchRejected) {
  Rng rng(213);
  SequenceCollection c = MakeCollection(1, 3, rng);
  Alphabet other = workload::MakeSymbols(2, "x");
  workload::RandomTransducerOptions opts;
  transducer::Transducer t = workload::RandomTransducer(other, opts, rng);
  EXPECT_FALSE(c.TopKPerSequence(t, 1).ok());
  EXPECT_FALSE(c.RankSequencesByAnswer(t, {}).ok());
  EXPECT_FALSE(c.AcceptanceByKey(automata::Dfa::AcceptAll(other)).ok());
}

}  // namespace
}  // namespace tms::db
