#include <gtest/gtest.h>

#include "common/rng.h"
#include "markov/world_iter.h"
#include "projector/indexed_enum.h"
#include "workload/hospital.h"
#include "workload/random_models.h"
#include "workload/text.h"

namespace tms::workload {
namespace {

TEST(HospitalTest, HmmIsWellFormed) {
  HospitalConfig config;
  auto hmm = BuildHospitalHmm(config);
  ASSERT_TRUE(hmm.ok()) << hmm.status();
  // 2 rooms + hallway + lab, 2 sub-locations each.
  EXPECT_EQ(hmm->states().size(), 8u);
  EXPECT_TRUE(hmm->states().Contains("r1a"));
  EXPECT_TRUE(hmm->states().Contains("hb"));
  EXPECT_TRUE(hmm->states().Contains("la"));
}

TEST(HospitalTest, ScenarioProducesValidPosterior) {
  HospitalConfig config;
  Rng rng(211);
  auto scenario = MakeScenario(config, 6, rng);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_EQ(scenario->mu.length(), 6);
  EXPECT_EQ(scenario->true_locations.size(), 6u);
  // Posterior worlds sum to 1.
  double total = 0;
  markov::ForEachWorld(scenario->mu,
                       [&](const Str&, double p) { total += p; });
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The true trajectory has nonzero posterior mass (emissions never rule
  // out the truth because accuracy > 0).
  EXPECT_GT(scenario->mu.WorldProbability(scenario->true_locations), 0.0);
}

TEST(HospitalTest, PlaceTrackerEmitsOnPlaceChange) {
  HospitalConfig config;
  auto hmm = BuildHospitalHmm(config);
  ASSERT_TRUE(hmm.ok());
  transducer::Transducer tracker = PlaceTracker(hmm->states(), config);
  EXPECT_TRUE(tracker.IsDeterministic());
  EXPECT_FALSE(tracker.IsSelective());
  const Alphabet& loc = hmm->states();
  // r1a r1b ha la la → enters room1, hallway, lab → "1 H L".
  Str world = *ParseStr(loc, "r1a r1b ha la la");
  auto out = tracker.TransduceDeterministic(world);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(FormatStr(tracker.output_alphabet(), *out), "1 H L");
}

TEST(HospitalTest, ConfigValidation) {
  HospitalConfig bad;
  bad.num_rooms = 0;
  EXPECT_FALSE(BuildHospitalHmm(bad).ok());
  bad = HospitalConfig();
  bad.stay_prob = 0.9;
  bad.within_place_prob = 0.2;  // sums past 1
  EXPECT_FALSE(BuildHospitalHmm(bad).ok());
  bad = HospitalConfig();
  bad.sensor_accuracy = 0.0;
  EXPECT_FALSE(BuildHospitalHmm(bad).ok());
}

TEST(TextTest, OcrSequenceShape) {
  OcrConfig config;
  auto mu = OcrSequence("abc", config);
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_EQ(mu->length(), 3);
  EXPECT_EQ(mu->nodes().size(), 29u);  // a-z , : space
  // Perfect accuracy concentrates on the truth.
  OcrConfig perfect;
  perfect.char_accuracy = 1.0;
  auto exact = OcrSequence("ab", perfect);
  ASSERT_TRUE(exact.ok());
  Str truth = *ParseStr(exact->nodes(), "a b");
  EXPECT_NEAR(exact->WorldProbability(truth), 1.0, 1e-12);
}

TEST(TextTest, NameExtractorFindsNames) {
  auto p = NameExtractor();
  ASSERT_TRUE(p.ok()) << p.status();
  OcrConfig perfect;
  perfect.char_accuracy = 1.0;
  auto mu = OcrSequence("xxname:bob rest", perfect);
  ASSERT_TRUE(mu.ok());
  auto results = projector::TopKIndexed(*mu, *p, 5);
  ASSERT_FALSE(results.empty());
  // The top answer is "bob" at index 8.
  EXPECT_EQ(FormatStrCompact(p->alphabet(), results[0].answer.output),
            "bob");
  EXPECT_EQ(results[0].answer.index, 8);
  EXPECT_NEAR(results[0].confidence, 1.0, 1e-9);
}

TEST(TextTest, MakeFormLineContainsMarker) {
  Rng rng(223);
  for (int trial = 0; trial < 10; ++trial) {
    std::string line = MakeFormLine("alice", 30, rng);
    EXPECT_EQ(line.size(), 30u);
    EXPECT_NE(line.find("name:alice "), std::string::npos);
  }
}

TEST(RandomModelsTest, GeneratorsProduceValidObjects) {
  Rng rng(227);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = RandomMarkovSequence(3, 5, 2, rng);
    EXPECT_EQ(mu.length(), 5);
    double total = 0;
    markov::ForEachWorld(mu, [&](const Str&, double p) { total += p; });
    EXPECT_NEAR(total, 1.0, 1e-9);

    Alphabet ab = MakeSymbols(3);
    automata::Dfa dfa = RandomDfa(ab, 4, rng);
    EXPECT_TRUE(dfa.Validate().ok());
    automata::Nfa nfa = RandomNfa(ab, 4, 1.5, rng);
    EXPECT_TRUE(nfa.Validate().ok());

    RandomTransducerOptions opts;
    opts.uniform_k = 1;
    transducer::Transducer t = RandomTransducer(ab, opts, rng);
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_EQ(t.UniformEmissionLength(), std::optional<int>(1));

    opts.deterministic = true;
    opts.uniform_k = -1;
    transducer::Transducer det = RandomTransducer(ab, opts, rng);
    EXPECT_TRUE(det.IsDeterministic());
  }
}

}  // namespace
}  // namespace tms::workload
