// Indexed s-projectors: Theorem 5.8 (confidence), Theorem 5.7 (exact
// ranked enumeration), Lemma 5.10 / Theorem 5.2 (I_max enumeration), and
// Proposition 5.9 (the I_max ≤ conf ≤ n·I_max sandwich).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "automata/regex.h"
#include "common/rng.h"
#include "projector/imax_enum.h"
#include "projector/indexed_confidence.h"
#include "projector/indexed_enum.h"
#include "projector/sprojector_confidence.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms::projector {
namespace {

SProjector RandomSProjector(const Alphabet& ab, Rng& rng, int states = 2) {
  auto p = SProjector::Create(workload::RandomDfa(ab, states, rng, 0.6),
                              workload::RandomDfa(ab, states, rng, 0.6),
                              workload::RandomDfa(ab, states, rng, 0.6));
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(IndexedConfidenceTest, MatchesBruteForce) {
  Rng rng(139);
  for (int trial = 0; trial < 20; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto computer = IndexedConfidence::Create(&mu, &p);
    ASSERT_TRUE(computer.ok());
    auto truth = testing::BruteForceIndexedAnswers(mu, p);
    for (const auto& [key, expected] : truth) {
      IndexedAnswer answer{key.first, key.second};
      EXPECT_NEAR(computer->Confidence(answer), expected, 1e-9)
          << FormatStr(p.alphabet(), key.first) << " @ " << key.second;
    }
    // Non-answers get zero.
    EXPECT_DOUBLE_EQ(computer->Confidence(IndexedAnswer{{0}, 99}), 0.0);
  }
}

TEST(IndexedConfidenceTest, EmptyOutputIndices) {
  // A = {ε}, B = E = Σ*: conf(ε, i) = 1 for every i in [1, n+1].
  Rng rng(11);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  auto p = SProjector::Create(automata::Dfa::AcceptAll(mu.nodes()),
                              automata::Dfa::EmptyStringOnly(mu.nodes()),
                              automata::Dfa::AcceptAll(mu.nodes()));
  ASSERT_TRUE(p.ok());
  auto computer = IndexedConfidence::Create(&mu, &*p);
  ASSERT_TRUE(computer.ok());
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NEAR(computer->Confidence(IndexedAnswer{{}, i}), 1.0, 1e-9);
  }
  EXPECT_DOUBLE_EQ(computer->Confidence(IndexedAnswer{{}, 5}), 0.0);
  EXPECT_DOUBLE_EQ(computer->Confidence(IndexedAnswer{{}, 0}), 0.0);
}

TEST(IndexedEnumTest, ExactRankedOrderAndCompleteness) {
  Rng rng(149);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto truth = testing::BruteForceIndexedAnswers(mu, p);

    auto it = IndexedEnumerator::Create(&mu, &p);
    ASSERT_TRUE(it.ok());
    std::vector<IndexedEnumerator::Result> results;
    while (auto r = it->Next()) results.push_back(*r);

    ASSERT_EQ(results.size(), truth.size());
    std::set<std::pair<Str, int>> seen;
    for (size_t i = 0; i < results.size(); ++i) {
      auto key = std::make_pair(results[i].answer.output,
                                results[i].answer.index);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate";
      auto truth_it = truth.find(key);
      ASSERT_NE(truth_it, truth.end()) << "phantom answer";
      EXPECT_NEAR(results[i].confidence, truth_it->second, 1e-9);
      if (i > 0) {
        EXPECT_GE(results[i - 1].confidence,
                  results[i].confidence - 1e-9);
      }
    }
  }
}

TEST(IndexedEnumTest, TopKConvenience) {
  Rng rng(151);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);
  SProjector p = RandomSProjector(mu.nodes(), rng);
  auto truth = testing::BruteForceIndexedAnswers(mu, p);
  auto top3 = TopKIndexed(mu, p, 3);
  ASSERT_LE(top3.size(), 3u);
  if (!truth.empty()) {
    double best = 0;
    for (const auto& [key, conf] : truth) best = std::max(best, conf);
    ASSERT_FALSE(top3.empty());
    EXPECT_NEAR(top3[0].confidence, best, 1e-9);
  }
}

TEST(ImaxTest, ImaxOfAnswerMatchesBruteForce) {
  Rng rng(157);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto conf = IndexedConfidence::Create(&mu, &p);
    ASSERT_TRUE(conf.ok());
    auto indexed_truth = testing::BruteForceIndexedAnswers(mu, p);
    std::map<Str, double> imax_truth;
    for (const auto& [key, c] : indexed_truth) {
      imax_truth[key.first] = std::max(imax_truth[key.first], c);
    }
    for (const auto& [o, expected] : imax_truth) {
      EXPECT_NEAR(ImaxOfAnswer(*conf, o), expected, 1e-9);
    }
  }
}

TEST(ImaxTest, Proposition59Sandwich) {
  // I_max(o) ≤ conf(o) ≤ n · I_max(o) for every answer.
  Rng rng(163);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 5;
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto conf_computer = IndexedConfidence::Create(&mu, &p);
    ASSERT_TRUE(conf_computer.ok());
    auto truth = testing::BruteForceSProjectorAnswers(mu, p);
    for (const auto& [o, conf] : truth) {
      double imax = ImaxOfAnswer(*conf_computer, o);
      EXPECT_LE(imax, conf + 1e-9);
      EXPECT_LE(conf, (n + 1) * imax + 1e-9);
      // (n+1 because ε-answers have n+1 admissible indices.)
    }
  }
}

TEST(ImaxEnumTest, OrderedByImaxAndComplete) {
  Rng rng(167);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto conf = IndexedConfidence::Create(&mu, &p);
    ASSERT_TRUE(conf.ok());
    auto indexed_truth = testing::BruteForceIndexedAnswers(mu, p);
    std::map<Str, double> imax_truth;
    for (const auto& [key, c] : indexed_truth) {
      imax_truth[key.first] = std::max(imax_truth[key.first], c);
    }

    auto it = ImaxEnumerator::Create(&mu, &p);
    ASSERT_TRUE(it.ok());
    std::vector<ranking::ScoredAnswer> results;
    while (auto r = it->Next()) results.push_back(*r);

    ASSERT_EQ(results.size(), imax_truth.size());
    std::set<Str> seen;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(seen.insert(results[i].output).second) << "duplicate";
      auto truth_it = imax_truth.find(results[i].output);
      ASSERT_NE(truth_it, imax_truth.end()) << "phantom";
      EXPECT_NEAR(results[i].score, truth_it->second, 1e-9);
      if (i > 0) {
        EXPECT_GE(results[i - 1].score, results[i].score - 1e-9);
      }
    }
  }
}

TEST(ImaxEnumTest, NApproximationOfConfidenceOrder) {
  // Theorem 5.2: the I_max stream is an n-approximate confidence order —
  // whenever o is emitted before o', conf(o') ≤ (n+1)·conf(o).
  Rng rng(173);
  const int n = 4;
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
  SProjector p = RandomSProjector(mu.nodes(), rng);
  auto truth = testing::BruteForceSProjectorAnswers(mu, p);
  auto it = ImaxEnumerator::Create(&mu, &p);
  ASSERT_TRUE(it.ok());
  std::vector<Str> order;
  while (auto r = it->Next()) order.push_back(r->output);
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_LE(truth.at(order[j]), (n + 1) * truth.at(order[i]) + 1e-9);
    }
  }
}

TEST(IndexedEnumTest, EpsilonOnlyPatternEnumeratesSplitPoints) {
  // A = {ε} with nontrivial B and E: the only indexed answers are (ε, i)
  // for admissible split points, enumerated in decreasing confidence.
  Rng rng(419);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
  // B = strings ending in n0 (or empty); E = anything.
  auto b = automata::CompileRegexToDfa(mu.nodes(), "( . * n0 ) ?");
  ASSERT_TRUE(b.ok());
  auto p = SProjector::Create(*b,
                              automata::Dfa::EmptyStringOnly(mu.nodes()),
                              automata::Dfa::AcceptAll(mu.nodes()));
  ASSERT_TRUE(p.ok());
  auto truth = testing::BruteForceIndexedAnswers(mu, *p);
  auto it = IndexedEnumerator::Create(&mu, &*p);
  ASSERT_TRUE(it.ok());
  std::vector<IndexedEnumerator::Result> results;
  while (auto r = it->Next()) results.push_back(*r);
  ASSERT_EQ(results.size(), truth.size());
  double prev = 1e300;
  for (const auto& r : results) {
    EXPECT_TRUE(r.answer.output.empty());
    auto key = std::make_pair(Str{}, r.answer.index);
    ASSERT_TRUE(truth.count(key));
    EXPECT_NEAR(r.confidence, truth.at(key), 1e-9);
    EXPECT_LE(r.confidence, prev + 1e-12);
    prev = r.confidence;
  }
}

TEST(SimpleImaxEnumTest, MatchesLawlerEnumeratorStream) {
  // The dedup-based enumerator (incremental polynomial time) must emit the
  // same (output → score) mapping as the Lawler-based one, in a score-
  // compatible order.
  Rng rng(401);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);

    auto lawler = ImaxEnumerator::Create(&mu, &p);
    auto simple = SimpleImaxEnumerator::Create(&mu, &p);
    ASSERT_TRUE(lawler.ok());
    ASSERT_TRUE(simple.ok());

    std::map<Str, double> lawler_scores, simple_scores;
    std::vector<double> lawler_order, simple_order;
    while (auto r = lawler->Next()) {
      lawler_scores[r->output] = r->score;
      lawler_order.push_back(r->score);
    }
    while (auto r = simple->Next()) {
      simple_scores[r->output] = r->score;
      simple_order.push_back(r->score);
    }
    ASSERT_EQ(simple_scores.size(), lawler_scores.size());
    for (const auto& [o, score] : lawler_scores) {
      ASSERT_TRUE(simple_scores.count(o));
      EXPECT_NEAR(simple_scores.at(o), score, 1e-9);
    }
    // Both streams are score-sorted.
    for (size_t i = 1; i < simple_order.size(); ++i) {
      EXPECT_GE(simple_order[i - 1], simple_order[i] - 1e-9);
      EXPECT_GE(lawler_order[i - 1], lawler_order[i] - 1e-9);
    }
    // The dedup enumerator consumed at least as many indexed answers as
    // it emitted outputs (the duplicates are its extra cost).
    EXPECT_GE(simple->consumed(),
              static_cast<int64_t>(simple_scores.size()));
  }
}

TEST(IndexedEnumTest, AlphabetMismatchRejected) {
  Rng rng(5);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 3, 3, rng);
  SProjector p = RandomSProjector(*Alphabet::FromNames({"0", "1"}), rng);
  EXPECT_FALSE(IndexedEnumerator::Create(&mu, &p).ok());
  EXPECT_FALSE(ImaxEnumerator::Create(&mu, &p).ok());
  EXPECT_FALSE(IndexedConfidence::Create(&mu, &p).ok());
}

}  // namespace
}  // namespace tms::projector
