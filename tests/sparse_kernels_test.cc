// Differential property tests for the CSR sparse kernels
// (kernels/sparse.h), three ways:
//
//   1. production kernels::Sp* against their kernels::ref::Sp* scalar
//      twins — BIT-IDENTICAL for every semiring (both evaluate each output
//      cell in CSR storage order; see the sparse.h contract),
//   2. sparse against the scalar dense references on the densified matrix
//      (missing entries = the semiring Zero) — bit-identical for MaxPlus,
//      BoolOr, and Real (skipping a ⊕-identity in an order-preserving
//      reduction is exact), tolerance-checked for LogSumExp,
//   3. BuildCsr / BuildCsrTranspose against the strictly-positive pattern
//      of the source matrix.
//
// Shapes cover 0, 1, and non-block-multiple dims; values include -inf
// rows (the MaxPlus/LSE Zero) and denormal-adjacent entries. Replay any
// failure with TMS_TEST_SEED=<seed> ./sparse_kernels_test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"
#include "kernels/sparse.h"
#include "test_util.h"

namespace tms::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kRelTol = 1e-12;  // LSE reassociation tolerance

const size_t kDims[] = {0, 1, 2, 3, 5, 8, 13, 16, 31};

size_t RandomDim(Rng& rng) {
  return kDims[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(std::size(kDims)) - 1))];
}

double RandomScore(Rng& rng) {
  int64_t kind = rng.UniformInt(0, 9);
  if (kind == 0) return -kInf;
  if (kind == 1) return 5e-324 * static_cast<double>(rng.UniformInt(1, 100));
  return (rng.UniformDouble() - 0.5) * 40.0;
}

double RandomProb(Rng& rng) {
  int64_t kind = rng.UniformInt(0, 9);
  if (kind == 1) return 5e-324 * static_cast<double>(rng.UniformInt(1, 100));
  return rng.UniformDouble() + 1e-9;  // strictly positive
}

template <typename SR>
typename SR::Value RandomValue(Rng& rng);
template <>
double RandomValue<MaxPlus>(Rng& rng) { return RandomScore(rng); }
template <>
double RandomValue<LogSumExp>(Rng& rng) { return RandomScore(rng); }
template <>
double RandomValue<Real>(Rng& rng) { return RandomProb(rng); }
template <>
uint8_t RandomValue<BoolOr>(Rng& rng) {
  return static_cast<uint8_t>(rng.UniformInt(0, 1));
}

// Owning random CSR matrix: each row holds a random ascending subset of
// the columns (expected fill ~40%, sometimes an empty row), values drawn
// from the semiring's distribution.
template <typename SR>
struct RandomCsr {
  std::vector<int32_t> off, idx;
  std::vector<typename SR::Value> val;
  size_t rows, cols;

  RandomCsr(Rng& rng, size_t r, size_t c) : rows(r), cols(c) {
    off.push_back(0);
    for (size_t i = 0; i < rows; ++i) {
      const bool empty_row = rng.UniformInt(0, 7) == 0;
      for (size_t j = 0; j < cols && !empty_row; ++j) {
        if (rng.UniformInt(0, 9) < 4) {
          idx.push_back(static_cast<int32_t>(j));
          val.push_back(RandomValue<SR>(rng));
        }
      }
      off.push_back(static_cast<int32_t>(idx.size()));
    }
  }

  CsrView<typename SR::Value> View() const {
    return {off.data(), idx.data(), val.data(), rows, cols, val.size()};
  }

  // Dense form with the semiring Zero in the unstored positions.
  std::vector<typename SR::Value> Densify() const {
    std::vector<typename SR::Value> out(rows * cols, SR::Zero());
    for (size_t i = 0; i < rows; ++i) {
      for (int32_t e = off[i]; e < off[i + 1]; ++e) {
        out[i * cols + static_cast<size_t>(idx[e])] = val[e];
      }
    }
    return out;
  }
};

template <typename T>
void ExpectBitEqual(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if constexpr (std::is_same_v<T, double>) {
      // Bitwise: distinguishes -0.0 / 0.0 and NaN patterns.
      EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
          << "index " << i << ": " << a[i] << " vs " << b[i];
    } else {
      EXPECT_EQ(a[i], b[i]) << "index " << i;
    }
  }
}

void ExpectClose(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isinf(a[i]) || std::isinf(b[i])) {
      EXPECT_EQ(a[i], b[i]) << "index " << i;
    } else {
      EXPECT_NEAR(a[i], b[i], std::abs(a[i]) * kRelTol + 1e-300)
          << "index " << i;
    }
  }
}

// --- 1. production vs ref:: — bit-identical for every semiring ----------

template <typename SR>
void CheckProductionVsRef(Rng& rng) {
  const size_t r = RandomDim(rng), c = RandomDim(rng), n = RandomDim(rng);
  RandomCsr<SR> A(rng, r, c);
  using V = typename SR::Value;

  {
    std::vector<V> x(c), y1(r), y2(r);
    for (auto& v : x) v = RandomValue<SR>(rng);
    Vector<V> xv(x.data(), c), y1v(y1.data(), r), y2v(y2.data(), r);
    SpGemv<SR>(A.View(), xv, &y1v);
    ref::SpGemv<SR>(A.View(), xv, &y2v);
    ExpectBitEqual(y1, y2);

    std::vector<V> z1(r), z2(r);
    Vector<V> z1v(z1.data(), r), z2v(z2.data(), r);
    SpRowReduce<SR>(A.View(), &z1v);
    ref::SpRowReduce<SR>(A.View(), &z2v);
    ExpectBitEqual(z1, z2);
  }
  {
    std::vector<V> x(r), y1(c), y2(c);
    for (auto& v : x) v = RandomValue<SR>(rng);
    Vector<V> xv(x.data(), r), y1v(y1.data(), c), y2v(y2.data(), c);
    SpGemvT<SR>(A.View(), xv, &y1v);
    ref::SpGemvT<SR>(A.View(), xv, &y2v);
    ExpectBitEqual(y1, y2);
  }
  {
    std::vector<V> b(c * n), c1(r * n), c2(r * n);
    for (auto& v : b) v = RandomValue<SR>(rng);
    Matrix<V> bm(b.data(), c, n);
    Matrix<V> c1m(c1.data(), r, n), c2m(c2.data(), r, n);
    SpGemm<SR>(A.View(), bm, &c1m);
    ref::SpGemm<SR>(A.View(), bm, &c2m);
    ExpectBitEqual(c1, c2);
  }
}

TEST(SparseKernels, ProductionMatchesRefBitwise) {
  uint64_t seed = testing::TestSeed(20260809);
  Rng rng(seed);
  SCOPED_TRACE(testing::SeedTrace(seed));
  for (int iter = 0; iter < 60; ++iter) {
    CheckProductionVsRef<MaxPlus>(rng);
    CheckProductionVsRef<LogSumExp>(rng);
    CheckProductionVsRef<Real>(rng);
    CheckProductionVsRef<BoolOr>(rng);
  }
}

// --- 2. sparse vs densified dense references ---------------------------

// Skipping the Zero entries of an order-preserving reduction must be
// exact for MaxPlus (max with -inf), Real (sum of nonnegatives with 0.0)
// and BoolOr; LogSumExp is checked within tolerance.
template <typename SR, bool kBitExact>
void CheckSparseVsDense(Rng& rng) {
  const size_t r = RandomDim(rng), c = RandomDim(rng), n = RandomDim(rng);
  RandomCsr<SR> A(rng, r, c);
  using V = typename SR::Value;
  std::vector<V> dense = A.Densify();
  Matrix<V> am(dense.data(), r, c);

  auto check = [&](const std::vector<V>& got, const std::vector<V>& want) {
    if constexpr (kBitExact) {
      ExpectBitEqual(got, want);
    } else {
      ExpectClose(got, want);
    }
  };

  {
    std::vector<V> x(c), ys(r), yd(r);
    for (auto& v : x) v = RandomValue<SR>(rng);
    Vector<V> xv(x.data(), c), ysv(ys.data(), r), ydv(yd.data(), r);
    SpGemv<SR>(A.View(), xv, &ysv);
    ref::Gemv<SR>(am, xv, &ydv);
    check(ys, yd);

    std::vector<V> zs(r), zd(r);
    Vector<V> zsv(zs.data(), r), zdv(zd.data(), r);
    SpRowReduce<SR>(A.View(), &zsv);
    ref::RowReduce<SR>(am, &zdv);
    check(zs, zd);
  }
  {
    std::vector<V> x(r), ys(c), yd(c);
    for (auto& v : x) v = RandomValue<SR>(rng);
    Vector<V> xv(x.data(), r), ysv(ys.data(), c), ydv(yd.data(), c);
    SpGemvT<SR>(A.View(), xv, &ysv);
    ref::GemvT<SR>(am, xv, &ydv);
    check(ys, yd);
  }
  {
    // SpGemm(A, B) == GemmTN(Aᵀ, B): stage the dense transpose.
    std::vector<V> at(c * r);
    for (size_t i = 0; i < r; ++i) {
      for (size_t j = 0; j < c; ++j) at[j * r + i] = dense[i * c + j];
    }
    Matrix<V> atm(at.data(), c, r);
    std::vector<V> b(c * n), cs(r * n), cd(r * n);
    for (auto& v : b) v = RandomValue<SR>(rng);
    Matrix<V> bm(b.data(), c, n);
    Matrix<V> csm(cs.data(), r, n), cdm(cd.data(), r, n);
    SpGemm<SR>(A.View(), bm, &csm);
    ref::GemmTN<SR>(atm, bm, &cdm);
    check(cs, cd);
  }
}

TEST(SparseKernels, SparseMatchesDensifiedDense) {
  uint64_t seed = testing::TestSeed(20260810);
  Rng rng(seed);
  SCOPED_TRACE(testing::SeedTrace(seed));
  for (int iter = 0; iter < 60; ++iter) {
    CheckSparseVsDense<MaxPlus, true>(rng);
    CheckSparseVsDense<Real, true>(rng);
    CheckSparseVsDense<BoolOr, true>(rng);
    CheckSparseVsDense<LogSumExp, false>(rng);
  }
}

// --- fused argmax ------------------------------------------------------

TEST(SparseKernels, MaxPlusGemvArgmaxMatchesRefAndDense) {
  uint64_t seed = testing::TestSeed(20260811);
  Rng rng(seed);
  SCOPED_TRACE(testing::SeedTrace(seed));
  for (int iter = 0; iter < 100; ++iter) {
    const size_t r = RandomDim(rng), c = RandomDim(rng);
    RandomCsr<MaxPlus> A(rng, r, c);
    std::vector<double> x(c);
    for (auto& v : x) v = RandomScore(rng);
    Vector<double> xv(x.data(), c);

    std::vector<double> y1(r), y2(r), y3(r);
    std::vector<int32_t> g1(r), g2(r), g3(r);
    Vector<double> y1v(y1.data(), r), y2v(y2.data(), r), y3v(y3.data(), r);
    Vector<int32_t> g1v(g1.data(), r), g2v(g2.data(), r), g3v(g3.data(), r);
    SpMaxPlusGemvArgmax(A.View(), xv, &y1v, &g1v);
    ref::SpMaxPlusGemvArgmax(A.View(), xv, &y2v, &g2v);
    ExpectBitEqual(y1, y2);
    ASSERT_EQ(g1, g2);

    // Against the dense argmax on the densified matrix. The dense kernel
    // scans all columns, so its tie-break index can name an unstored
    // (-inf) column only when the whole row reduces to -inf — where both
    // report arg 0 by the empty-row convention.
    std::vector<double> dense = A.Densify();
    Matrix<double> am(dense.data(), r, c);
    MaxPlusGemvArgmax(am, xv, &y3v, &g3v);
    ExpectBitEqual(y1, y3);
    for (size_t i = 0; i < r; ++i) {
      if (y1[i] != -kInf) {
        EXPECT_EQ(g1[i], g3[i]) << "row " << i;
      }
    }
  }
}

// --- boolean mask gather ----------------------------------------------

TEST(SparseKernels, SpMaskOrMatchesScalarOracle) {
  uint64_t seed = testing::TestSeed(20260812);
  Rng rng(seed);
  SCOPED_TRACE(testing::SeedTrace(seed));
  for (int iter = 0; iter < 100; ++iter) {
    const size_t r = RandomDim(rng), c = RandomDim(rng), n = RandomDim(rng);
    RandomCsr<Real> A(rng, r, c);
    std::vector<uint8_t> b(c * n), c1(r * n), c2(r * n), want(r * n, 0);
    for (auto& v : b) v = static_cast<uint8_t>(rng.UniformInt(0, 1));
    Matrix<uint8_t> bm(b.data(), c, n);
    Matrix<uint8_t> c1m(c1.data(), r, n), c2m(c2.data(), r, n);
    SpMaskOr(A.View(), bm, &c1m);
    ref::SpMaskOr(A.View(), bm, &c2m);
    for (size_t i = 0; i < r; ++i) {
      for (int32_t e = A.off[i]; e < A.off[i + 1]; ++e) {
        const size_t k = static_cast<size_t>(A.idx[e]);
        for (size_t j = 0; j < n; ++j) {
          want[i * n + j] |= b[k * n + j] ? 1 : 0;
        }
      }
    }
    ExpectBitEqual(c1, c2);
    ExpectBitEqual(c1, want);
  }
}

// --- 3. CSR builders ---------------------------------------------------

TEST(SparseKernels, BuildCsrMatchesPositivePattern) {
  uint64_t seed = testing::TestSeed(20260813);
  Rng rng(seed);
  SCOPED_TRACE(testing::SeedTrace(seed));
  for (int iter = 0; iter < 100; ++iter) {
    const size_t r = RandomDim(rng), c = RandomDim(rng);
    std::vector<double> dense(r * c, 0.0);
    for (auto& v : dense) {
      if (rng.UniformInt(0, 2) == 0) v = rng.UniformDouble() + 1e-12;
    }
    std::vector<int32_t> off, idx, toff, tidx;
    std::vector<double> val, tval;
    const size_t nnz = BuildCsr(dense.data(), r, c, &off, &idx, &val);
    const size_t tnnz =
        BuildCsrTranspose(dense.data(), r, c, &toff, &tidx, &tval);
    EXPECT_EQ(nnz, tnnz);

    // Round-trip: densifying the CSR reproduces the matrix exactly (all
    // entries are >= 0, so pattern == strictly-positive set).
    std::vector<double> back(r * c, 0.0);
    ASSERT_EQ(off.size(), r + 1);
    for (size_t i = 0; i < r; ++i) {
      int32_t prev = -1;
      for (int32_t e = off[i]; e < off[i + 1]; ++e) {
        EXPECT_GT(idx[e], prev);  // ascending, duplicate-free
        prev = idx[e];
        back[i * c + static_cast<size_t>(idx[e])] = val[e];
      }
    }
    ExpectBitEqual(back, dense);

    std::vector<double> backt(r * c, 0.0);
    ASSERT_EQ(toff.size(), c + 1);
    for (size_t j = 0; j < c; ++j) {
      int32_t prev = -1;
      for (int32_t e = toff[j]; e < toff[j + 1]; ++e) {
        EXPECT_GT(tidx[e], prev);
        prev = tidx[e];
        backt[static_cast<size_t>(tidx[e]) * c + j] = tval[e];
      }
    }
    ExpectBitEqual(backt, dense);
  }
}

// --- backend policy ----------------------------------------------------

TEST(SparseKernels, ChooseBackendPolicy) {
  using BC = BackendChoice;
  // Forced choices resolve as asked (sparse only when a CSR exists).
  EXPECT_EQ(ChooseBackend(BC::kDense, 0.01, 1024, true), Backend::kDense);
  EXPECT_EQ(ChooseBackend(BC::kSparse, 0.99, 1024, true), Backend::kSparse);
  EXPECT_EQ(ChooseBackend(BC::kSparse, 0.01, 1024, false), Backend::kDense);
  // Auto: sparse iff dense enough a win — low density AND large dim.
  EXPECT_EQ(ChooseBackend(BC::kAuto, 0.05, 1024, true), Backend::kSparse);
  EXPECT_EQ(ChooseBackend(BC::kAuto, 0.50, 1024, true), Backend::kDense);
  EXPECT_EQ(ChooseBackend(BC::kAuto, 0.05, 4, true), Backend::kDense);
  EXPECT_EQ(ChooseBackend(BC::kAuto, 0.05, 1024, false), Backend::kDense);
}

}  // namespace
}  // namespace tms::kernels
