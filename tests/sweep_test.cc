// Parameterized cross-class sweeps: for every transducer class of Table 2
// and a grid of model sizes, validate the FULL evaluation pipeline
// (enumeration completeness, confidence, E_max, ranked order) against
// possible-world brute force. This is the library-wide conformance net.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "projector/evaluator.h"
#include "query/evaluator.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct PipelineParam {
  const char* name;
  int sigma;
  int n;
  int states;
  bool deterministic;
  int uniform_k;      // -1 = non-uniform
  int max_emission;
  bool selective;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineSweep, FullEvaluationMatchesBruteForce) {
  const PipelineParam& param = GetParam();
  Rng rng(static_cast<uint64_t>(param.sigma * 7919 + param.n * 104729 +
                                param.states + param.uniform_k + 17));
  for (int trial = 0; trial < 5; ++trial) {
    markov::MarkovSequence mu =
        workload::RandomMarkovSequence(param.sigma, param.n, param.sigma, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = param.states;
    opts.deterministic = param.deterministic;
    opts.uniform_k = param.uniform_k;
    opts.max_emission = param.max_emission;
    opts.accept_prob = param.selective ? 0.5 : 1.0;
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);

    // 1. Unranked enumeration: exactly the brute-force answer set.
    std::vector<Str> answers = query::AllAnswers(mu, t);
    ASSERT_EQ(answers.size(), truth.size());
    for (const Str& o : answers) ASSERT_TRUE(truth.count(o));

    // 2. Evaluator: top-k ranked by E_max with correct scores.
    auto eval = query::Evaluator::Create(&mu, &t);
    ASSERT_TRUE(eval.ok());
    auto topk = eval->TopK(5);
    ASSERT_TRUE(topk.ok()) << topk.status();
    double prev = 1e300;
    for (const query::AnswerInfo& info : *topk) {
      EXPECT_NEAR(info.confidence, truth.at(info.output), 1e-9);
      EXPECT_NEAR(info.emax, testing::BruteForceEmax(mu, t, info.output),
                  1e-9);
      EXPECT_LE(info.emax, prev + 1e-12);
      prev = info.emax;
      // E_max ≤ conf ≤ 1 sandwich.
      EXPECT_LE(info.emax, info.confidence + 1e-12);
      EXPECT_LE(info.confidence, 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2Classes, PipelineSweep,
    ::testing::Values(
        PipelineParam{"mealy", 2, 5, 2, true, 1, 1, false},
        PipelineParam{"det_uniform0", 2, 5, 2, true, 0, 0, true},
        PipelineParam{"det_uniform2", 2, 4, 2, true, 2, 2, true},
        PipelineParam{"det_nonuniform", 2, 4, 3, true, -1, 2, true},
        PipelineParam{"nondet_uniform", 2, 4, 3, false, 1, 1, false},
        PipelineParam{"nondet_general", 2, 4, 3, false, -1, 2, true},
        PipelineParam{"wider_alphabet", 3, 4, 2, true, -1, 1, true},
        PipelineParam{"longer_chain", 2, 7, 2, true, 1, 1, false}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return std::string(info.param.name);
    });

struct SProjectorParam {
  const char* name;
  int sigma;
  int n;
  int states;
};

class SProjectorSweep : public ::testing::TestWithParam<SProjectorParam> {};

TEST_P(SProjectorSweep, FacadeMatchesBruteForce) {
  const SProjectorParam& param = GetParam();
  Rng rng(static_cast<uint64_t>(param.sigma * 31 + param.n * 37 +
                                param.states));
  for (int trial = 0; trial < 5; ++trial) {
    markov::MarkovSequence mu =
        workload::RandomMarkovSequence(param.sigma, param.n, param.sigma, rng);
    auto p = projector::SProjector::Create(
        workload::RandomDfa(mu.nodes(), param.states, rng, 0.6),
        workload::RandomDfa(mu.nodes(), param.states, rng, 0.6),
        workload::RandomDfa(mu.nodes(), param.states, rng, 0.6));
    ASSERT_TRUE(p.ok());
    auto eval = projector::SProjectorEvaluator::Create(&mu, &*p);
    ASSERT_TRUE(eval.ok());

    auto indexed_truth = testing::BruteForceIndexedAnswers(mu, *p);
    auto string_truth = testing::BruteForceSProjectorAnswers(mu, *p);

    // Indexed top-k: exact order, correct confidences.
    auto indexed = eval->TopKIndexed(5);
    double prev = 1e300;
    for (const auto& r : indexed) {
      auto key = std::make_pair(r.answer.output, r.answer.index);
      ASSERT_TRUE(indexed_truth.count(key));
      EXPECT_NEAR(r.confidence, indexed_truth.at(key), 1e-9);
      EXPECT_NEAR(eval->IndexedConfidenceOf(r.answer), r.confidence, 1e-9);
      EXPECT_LE(r.confidence, prev + 1e-12);
      prev = r.confidence;
    }

    // Distinct-string top-k: I_max order, exact confidences, Prop 5.9.
    auto topk = eval->TopK(5);
    ASSERT_TRUE(topk.ok()) << topk.status();
    prev = 1e300;
    for (const auto& info : *topk) {
      ASSERT_TRUE(string_truth.count(info.output));
      EXPECT_NEAR(info.confidence, string_truth.at(info.output), 1e-9);
      EXPECT_NEAR(info.imax, eval->Imax(info.output), 1e-9);
      EXPECT_LE(info.imax, info.confidence + 1e-9);
      EXPECT_LE(info.confidence, (param.n + 1) * info.imax + 1e-9);
      EXPECT_LE(info.imax, prev + 1e-12);
      prev = info.imax;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SProjectorSweep,
    ::testing::Values(SProjectorParam{"small", 2, 4, 2},
                      SProjectorParam{"wider", 3, 4, 2},
                      SProjectorParam{"longer", 2, 6, 2},
                      SProjectorParam{"bigger_dfas", 2, 4, 3}),
    [](const ::testing::TestParamInfo<SProjectorParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace tms
