#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/parse.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace tms {
namespace {

TEST(ParseTest, NonNegInt64AcceptsDigitsOnly) {
  int64_t v = -1;
  EXPECT_TRUE(ParseNonNegInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseNonNegInt64("9223372036854775807", &v));
  EXPECT_EQ(v, 9223372036854775807LL);
  EXPECT_TRUE(ParseNonNegInt64("0042", &v));
  EXPECT_EQ(v, 42);
}

TEST(ParseTest, NonNegInt64RejectsGarbage) {
  int64_t v = 123;
  EXPECT_FALSE(ParseNonNegInt64("", &v));
  EXPECT_FALSE(ParseNonNegInt64("abc", &v));
  EXPECT_FALSE(ParseNonNegInt64("12x", &v));
  EXPECT_FALSE(ParseNonNegInt64("-1", &v));
  EXPECT_FALSE(ParseNonNegInt64("+1", &v));
  EXPECT_FALSE(ParseNonNegInt64(" 1", &v));
  EXPECT_FALSE(ParseNonNegInt64("1 ", &v));
  // One past int64 max: atoll would be UB; the checked parser says no.
  EXPECT_FALSE(ParseNonNegInt64("9223372036854775808", &v));
  EXPECT_EQ(v, 123) << "failed parse must not clobber the output";
}

TEST(ParseTest, PositiveIntRejectsZeroAndOverflow) {
  int v = 7;
  EXPECT_TRUE(ParsePositiveInt("8", &v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(ParsePositiveInt("0", &v));
  EXPECT_FALSE(ParsePositiveInt("2147483648", &v));  // INT_MAX + 1
  EXPECT_TRUE(ParsePositiveInt("2147483647", &v));
  EXPECT_EQ(v, 2147483647);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
  Rng c(43);
  bool all_equal = true;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.UniformInt(0, 1000000) != c.UniformInt(0, 1000000)) {
      all_equal = false;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(2);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.015);
}

TEST(RngTest, RandomDistributionProperties) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    size_t size = static_cast<size_t>(rng.UniformInt(1, 8));
    size_t support = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(size)));
    std::vector<double> dist = rng.RandomDistribution(size, support);
    ASSERT_EQ(dist.size(), size);
    double sum = 0;
    size_t nonzero = 0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      sum += p;
      if (p > 0) ++nonzero;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(nonzero, support);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int64_t ns = watch.ElapsedNanos();
  EXPECT_GE(ns, 8 * 1000 * 1000);  // at least ~8ms passed
  EXPECT_NEAR(watch.ElapsedSeconds(), static_cast<double>(ns) * 1e-9, 1e-3);
  watch.Restart();
  EXPECT_LT(watch.ElapsedNanos(), 8 * 1000 * 1000);
}

TEST(StopwatchTest, Monotone) {
  Stopwatch watch;
  int64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    int64_t now = watch.ElapsedNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(StopwatchTest, LapMeasuresIntervals) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int64_t first = watch.Lap();
  EXPECT_GE(first, 4 * 1000 * 1000);  // at least ~4ms in the first lap
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int64_t second = watch.Lap();
  EXPECT_GE(second, 4 * 1000 * 1000);
  // Laps partition the total: the overall clock keeps running.
  EXPECT_GE(watch.ElapsedNanos(), first + second);
  // A lap taken immediately after another is near-zero, while the total
  // elapsed time is unaffected by lapping.
  int64_t third = watch.Lap();
  EXPECT_LT(third, 4 * 1000 * 1000);
  EXPECT_GE(watch.ElapsedNanos(), first + second);
}

TEST(StopwatchTest, RestartResetsLapOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  // The pre-restart interval must not leak into the first lap.
  EXPECT_LT(watch.Lap(), 4 * 1000 * 1000);
  EXPECT_NEAR(watch.LapSeconds(), 0.0, 1e-3);
}

TEST(CheckTest, PassingChecksAreSilent) {
  TMS_CHECK(true);
  TMS_CHECK_EQ(1, 1);
  TMS_CHECK_NE(1, 2);
  TMS_CHECK_LT(1, 2);
  TMS_CHECK_LE(2, 2);
  TMS_CHECK_GT(3, 2);
  TMS_CHECK_GE(3, 3);
  TMS_DCHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(TMS_CHECK(false), "TMS_CHECK failed");
  EXPECT_DEATH(TMS_CHECK_EQ(1, 2), "TMS_CHECK failed");
}

}  // namespace
}  // namespace tms
