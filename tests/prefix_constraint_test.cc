#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "ranking/lawler.h"
#include "ranking/prefix_constraint.h"

namespace tms::ranking {
namespace {

// All strings over {0,1} of length <= max_len.
std::vector<Str> AllStrings(int max_len) {
  std::vector<Str> out = {{}};
  std::vector<Str> frontier = {{}};
  for (int l = 0; l < max_len; ++l) {
    std::vector<Str> next;
    for (const Str& s : frontier) {
      for (Symbol d : {0, 1}) {
        Str ext = s;
        ext.push_back(d);
        out.push_back(ext);
        next.push_back(std::move(ext));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(OutputConstraintTest, AllAdmitsEverything) {
  OutputConstraint all = OutputConstraint::All();
  for (const Str& s : AllStrings(3)) EXPECT_TRUE(all.Admits(s));
}

TEST(OutputConstraintTest, AdmitsSemantics) {
  OutputConstraint c;
  c.prefix = {1, 0};
  c.excluded_next = {1};
  c.allow_equal = false;
  EXPECT_FALSE(c.Admits({1, 0}));       // equality disallowed
  EXPECT_FALSE(c.Admits({1}));          // too short
  EXPECT_FALSE(c.Admits({0, 0, 1}));    // wrong prefix
  EXPECT_FALSE(c.Admits({1, 0, 1}));    // excluded next symbol
  EXPECT_TRUE(c.Admits({1, 0, 0}));
  EXPECT_TRUE(c.Admits({1, 0, 0, 1}));
}

TEST(OutputConstraintTest, PartitionIsDisjointAndExhaustive) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    OutputConstraint c;
    int plen = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < plen; ++i) {
      c.prefix.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    }
    if (rng.Bernoulli(0.3)) c.excluded_next.insert(0);
    c.allow_equal = rng.Bernoulli(0.5);

    // Pick a random admitted winner.
    std::vector<Str> admitted;
    for (const Str& s : AllStrings(4)) {
      if (c.Admits(s)) admitted.push_back(s);
    }
    if (admitted.empty()) continue;
    const Str winner =
        admitted[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(admitted.size()) - 1))];

    std::vector<OutputConstraint> children = c.PartitionAfter(winner);
    for (const Str& s : AllStrings(4)) {
      int count = 0;
      for (const OutputConstraint& child : children) {
        if (child.Admits(s)) ++count;
      }
      if (s == winner) {
        EXPECT_EQ(count, 0) << "winner must be excluded";
      } else if (c.Admits(s)) {
        EXPECT_EQ(count, 1) << "admitted strings covered exactly once";
      } else {
        EXPECT_EQ(count, 0) << "non-admitted strings stay excluded";
      }
    }
  }
}

TEST(OutputConstraintTest, ToDfaMatchesAdmits) {
  Alphabet ab = *Alphabet::FromNames({"0", "1"});
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    OutputConstraint c;
    int plen = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < plen; ++i) {
      c.prefix.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    }
    if (rng.Bernoulli(0.4)) c.excluded_next.insert(rng.Bernoulli(0.5) ? 1 : 0);
    c.allow_equal = rng.Bernoulli(0.5);
    automata::Dfa dfa = c.ToDfa(ab);
    for (const Str& s : AllStrings(5)) {
      EXPECT_EQ(dfa.Accepts(s), c.Admits(s))
          << c.ToString(ab) << " on " << FormatStr(ab, s);
    }
  }
}

TEST(LawlerTest, EnumeratesFiniteSpaceInScoreOrder) {
  // Space: all strings over {0,1} of length <= 3 with arbitrary scores.
  std::vector<Str> space = AllStrings(3);
  auto score = [](const Str& s) {
    double v = 1.0;
    for (Symbol d : s) v = v * 0.6 + (d == 1 ? 0.3 : 0.1);
    return v;
  };
  SubspaceSolver solver =
      [&](const OutputConstraint& c) -> std::optional<ScoredAnswer> {
    std::optional<ScoredAnswer> best;
    for (const Str& s : space) {
      if (!c.Admits(s)) continue;
      double v = score(s);
      if (!best.has_value() || v > best->score) best = ScoredAnswer{s, v};
    }
    return best;
  };
  LawlerEnumerator it(solver);
  std::vector<ScoredAnswer> results;
  while (auto answer = it.Next()) results.push_back(*answer);
  ASSERT_EQ(results.size(), space.size());
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
  // Every string appears exactly once.
  std::set<Str> seen;
  for (const auto& r : results) EXPECT_TRUE(seen.insert(r.output).second);
}

TEST(LawlerTest, EmptySpace) {
  SubspaceSolver solver =
      [](const OutputConstraint&) -> std::optional<ScoredAnswer> {
    return std::nullopt;
  };
  LawlerEnumerator it(solver);
  EXPECT_FALSE(it.Next().has_value());
}

}  // namespace
}  // namespace tms::ranking
