// Compiled-out fault-injection surface: this TU defines
// TMS_FAULTS_FORCE_DISABLE before including exec/fault.h, so
// TMS_FAULT_POINT must collapse to the constant `false` — no injector
// symbol, no point-name literal, zero overhead. Linked into the same
// binary as run_context_test.cc (which uses the instrumented surface) to
// prove the two coexist ODR-clean, mirroring obs_noop_test.cc.

#define TMS_FAULTS_FORCE_DISABLE 1
#include "exec/fault.h"

#include <gtest/gtest.h>

namespace tms {
namespace {

TEST(FaultNoopTest, PointCompilesToFalse) {
  // With the surface compiled out this is the literal `false`; if the
  // macro ever leaked a runtime call the armed injector in the sibling TU
  // could fire here.
  EXPECT_FALSE(TMS_FAULT_POINT("noop.point"));
  static_assert(!TMS_FAULT_POINT("noop.compile_time"),
                "disabled fault point must be a compile-time constant");
}

TEST(FaultNoopTest, UsableInConditions) {
  int taken = 0;
  for (int i = 0; i < 3; ++i) {
    if (TMS_FAULT_POINT("noop.loop")) ++taken;
  }
  EXPECT_EQ(taken, 0);
}

}  // namespace
}  // namespace tms
