// The compiled-out observability surface. This TU defines
// TMS_OBS_FORCE_DISABLE before including obs/obs.h, so it sees the no-op
// API (inline namespace tms::obs::noop) and the TMS_OBS_* macros expand
// to nothing — exactly what a -DTMS_OBS=OFF build sees everywhere. It
// links into the same binary as obs_test.cc, which proves the two
// surfaces coexist ODR-clean.

#define TMS_OBS_FORCE_DISABLE 1

#include <gtest/gtest.h>

#include "obs/explain.h"
#include "obs/obs.h"

namespace tms::obs {
namespace {

static_assert(!TMS_OBS_ACTIVE,
              "TMS_OBS_FORCE_DISABLE must select the no-op surface");

TEST(ObsNoopTest, CollectionIsPermanentlyOff) {
  SetEnabled(true);  // must be ignored
  EXPECT_FALSE(Enabled());
  SetTracingEnabled(true);
  EXPECT_FALSE(TracingEnabled());
}

TEST(ObsNoopTest, MetricsAreInert) {
  Counter& c = Registry::Global().counter("noop.counter");
  c.Add(5);
  EXPECT_EQ(c.value(), 0);
  Gauge& g = Registry::Global().gauge("noop.gauge");
  g.Set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  Histogram& h = Registry::Global().histogram("noop.histogram");
  h.Record(42);
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(Registry::Global().Snapshot().empty());
}

TEST(ObsNoopTest, MacrosCompileToNothing) {
  TMS_OBS_COUNT("noop.macro.counter", 1);
  TMS_OBS_GAUGE_SET("noop.macro.gauge", 1.0);
  TMS_OBS_HISTOGRAM("noop.macro.histogram", 1);
  TMS_OBS_SPAN("noop.macro.span");
  EXPECT_TRUE(Registry::Global().Snapshot().empty());
}

TEST(ObsNoopTest, DelayRecorderIsInert) {
  DelayRecorder delay("noop.engine");
  delay.Restart();
  EXPECT_EQ(delay.RecordAnswer(), 0);
  EXPECT_EQ(delay.Snapshot().count, 0);
}

TEST(ObsNoopTest, TracerIsInert) {
  {
    Span span("noop.span");
  }
  Tracer::Global().Record(TraceEvent{});
  EXPECT_TRUE(Tracer::Global().Events().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0);
  EXPECT_EQ(Tracer::Global().ChromeTraceJson(), "{\"traceEvents\":[]}");
}

TEST(ObsNoopTest, ExportersHandleEmptySnapshots) {
  RegistrySnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(RegistryJson(snap),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(PrometheusText(snap), "");
}

TEST(ObsNoopTest, QueryScopeIsInert) {
  QueryScope scope("noop-query");
  EXPECT_EQ(QueryScope::Current(), nullptr);
  EXPECT_EQ(scope.query_id(), 0u);
  EXPECT_EQ(scope.root_span_id(), 0u);
  QueryScope::AddCount("noop.scope.counter", 5);
  QueryScope::SetGauge("noop.scope.gauge", 1.0);
  QueryScope::RecordHistogram("noop.scope.hist", 2);
  EXPECT_TRUE(scope.Snapshot().empty());
  EXPECT_EQ(CurrentQueryId(), 0u);
  TraceContext ctx = CurrentTraceContext();
  EXPECT_EQ(ctx.scope, nullptr);
  ScopeAdoption adopt(ctx);
  EXPECT_EQ(CurrentQueryId(), 0u);
}

TEST(ObsNoopTest, FlightRecorderIsInert) {
  FlightRecorder& r = FlightRecorder::Global();
  r.Record(TraceEvent{});
  r.RecordQueryEnd(QueryEndEvent{});
  r.OnTruncation("BUDGET_EXHAUSTED", 1, "");
  EXPECT_EQ(r.dump_count(), 0);
  EXPECT_EQ(r.LastDump(), "");
  EXPECT_TRUE(r.SnapshotSpans().empty());
  EXPECT_TRUE(r.SnapshotQueries().empty());
  EXPECT_EQ(r.dropped(), 0);
}

TEST(ObsNoopTest, ExplainReportsZerosWithoutInstrumentation) {
  // explain.h is plain-data and unconditional; fed a no-op scope's empty
  // snapshot it must render a complete all-zero report, not crash.
  ExplainInput input;
  input.query = "noop";
  ExplainPhases phases = DerivePhases(input);
  EXPECT_EQ(phases.compose_ns, 0);
  EXPECT_EQ(phases.other_ns, 0);
  std::string json = ExplainJson(input);
  EXPECT_NE(json.find("\"explain\":{"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":{"), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":0"), std::string::npos);
  EXPECT_FALSE(ExplainText(input).empty());
}

}  // namespace
}  // namespace tms::obs
