// The compiled-out observability surface. This TU defines
// TMS_OBS_FORCE_DISABLE before including obs/obs.h, so it sees the no-op
// API (inline namespace tms::obs::noop) and the TMS_OBS_* macros expand
// to nothing — exactly what a -DTMS_OBS=OFF build sees everywhere. It
// links into the same binary as obs_test.cc, which proves the two
// surfaces coexist ODR-clean.

#define TMS_OBS_FORCE_DISABLE 1

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace tms::obs {
namespace {

static_assert(!TMS_OBS_ACTIVE,
              "TMS_OBS_FORCE_DISABLE must select the no-op surface");

TEST(ObsNoopTest, CollectionIsPermanentlyOff) {
  SetEnabled(true);  // must be ignored
  EXPECT_FALSE(Enabled());
  SetTracingEnabled(true);
  EXPECT_FALSE(TracingEnabled());
}

TEST(ObsNoopTest, MetricsAreInert) {
  Counter& c = Registry::Global().counter("noop.counter");
  c.Add(5);
  EXPECT_EQ(c.value(), 0);
  Gauge& g = Registry::Global().gauge("noop.gauge");
  g.Set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  Histogram& h = Registry::Global().histogram("noop.histogram");
  h.Record(42);
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(Registry::Global().Snapshot().empty());
}

TEST(ObsNoopTest, MacrosCompileToNothing) {
  TMS_OBS_COUNT("noop.macro.counter", 1);
  TMS_OBS_GAUGE_SET("noop.macro.gauge", 1.0);
  TMS_OBS_HISTOGRAM("noop.macro.histogram", 1);
  TMS_OBS_SPAN("noop.macro.span");
  EXPECT_TRUE(Registry::Global().Snapshot().empty());
}

TEST(ObsNoopTest, DelayRecorderIsInert) {
  DelayRecorder delay("noop.engine");
  delay.Restart();
  EXPECT_EQ(delay.RecordAnswer(), 0);
  EXPECT_EQ(delay.Snapshot().count, 0);
}

TEST(ObsNoopTest, TracerIsInert) {
  {
    Span span("noop.span");
  }
  Tracer::Global().Record(TraceEvent{});
  EXPECT_TRUE(Tracer::Global().Events().empty());
  EXPECT_EQ(Tracer::Global().dropped(), 0);
  EXPECT_EQ(Tracer::Global().ChromeTraceJson(), "{\"traceEvents\":[]}");
}

TEST(ObsNoopTest, ExportersHandleEmptySnapshots) {
  RegistrySnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(RegistryJson(snap),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(PrometheusText(snap), "");
}

}  // namespace
}  // namespace tms::obs
