// Robustness: hostile numeric inputs, degenerate models, and the umbrella
// header.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tms.h"

namespace tms {
namespace {

TEST(RobustnessTest, MarkovSequenceRejectsNonFiniteProbabilities) {
  Alphabet nodes = *Alphabet::FromNames({"x", "y"});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(markov::MarkovSequence::Create(nodes, {nan, 1.0}, {}).ok());
  EXPECT_FALSE(markov::MarkovSequence::Create(nodes, {inf, 0.0}, {}).ok());
  EXPECT_FALSE(markov::MarkovSequence::Create(
                   nodes, {0.5, 0.5}, {{nan, 1.0, 0.5, 0.5}})
                   .ok());
  // -0.0 is a valid zero.
  EXPECT_TRUE(markov::MarkovSequence::Create(nodes, {-0.0, 1.0}, {}).ok());
}

TEST(RobustnessTest, HmmRejectsNonFiniteProbabilities) {
  Alphabet st = *Alphabet::FromNames({"a"});
  Alphabet ob = *Alphabet::FromNames({"x"});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(hmm::Hmm::Create(st, ob, {nan}, {1.0}, {1.0}).ok());
}

TEST(RobustnessTest, DegenerateSingleNodeModels) {
  // One node, length 1, probability 1: everything should work and every
  // probability should be exactly 1 or 0.
  Alphabet nodes = *Alphabet::FromNames({"only"});
  auto mu = markov::MarkovSequence::Create(nodes, {1.0}, {});
  ASSERT_TRUE(mu.ok());
  transducer::Transducer t(nodes, nodes, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {0}).ok());

  auto eval = query::Evaluator::Create(&*mu, &t);
  ASSERT_TRUE(eval.ok());
  auto all = eval->EvaluateTwoStep();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].output, (Str{0}));
  EXPECT_DOUBLE_EQ((*all)[0].confidence, 1.0);

  auto top = query::TopAnswerByConfidence(*mu, t);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->certified_optimal);
  EXPECT_DOUBLE_EQ(top->confidence, 1.0);
}

TEST(RobustnessTest, TransducerWithNoTransitionsAnywhere) {
  // An NFA that is stuck everywhere: no answers, everything degrades
  // gracefully.
  Rng rng(1001);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  transducer::Transducer t(mu.nodes(), mu.nodes(), 1);
  t.SetAccepting(0, true);  // accepting but unreachable past step 0
  EXPECT_FALSE(query::HasAnyAnswer(mu, t));
  EXPECT_TRUE(query::AllAnswers(mu, t).empty());
  EXPECT_FALSE(query::TopAnswerByEmax(mu, t).has_value());
  EXPECT_FALSE(query::TopAnswerByConfidence(mu, t).ok());
  auto conf = query::Confidence(mu, t, {});
  ASSERT_TRUE(conf.ok());
  EXPECT_DOUBLE_EQ(*conf, 0.0);
}

TEST(RobustnessTest, VeryLongSequencesStayFinite) {
  // n = 5000: log-domain E_max and the Theorem 4.6 DP must neither
  // underflow to garbage nor overflow the DP tables.
  const int n = 5000;
  Alphabet nodes = *Alphabet::FromNames({"x", "y"});
  std::vector<std::vector<double>> transitions(
      static_cast<size_t>(n - 1), {0.9, 0.1, 0.1, 0.9});
  auto mu = markov::MarkovSequence::Create(nodes, {1.0, 0.0}, transitions);
  ASSERT_TRUE(mu.ok());
  // 0-uniform acceptor of everything: conf(ε) = 1 regardless of n.
  transducer::Transducer t(nodes, nodes, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {}).ok());
  auto conf = query::ConfidenceDeterministic(*mu, t, {});
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 1.0, 1e-9);
  auto top = query::TopAnswerByEmax(*mu, t);
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->world.size(), static_cast<size_t>(n));
}

TEST(RobustnessTest, LargeAlphabet) {
  // 64 nodes: index arithmetic and the DPs hold up.
  Rng rng(1003);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(64, 4, 8, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto top = query::TopAnswerByEmax(mu, t);
  ASSERT_TRUE(top.has_value());
  auto conf = query::Confidence(mu, t, top->output);
  ASSERT_TRUE(conf.ok());
  EXPECT_GE(*conf, top->prob - 1e-12);
}

TEST(RobustnessTest, UmbrellaHeaderCoversTheApi) {
  // Compile-time: this test file includes only "tms.h" and touches one
  // symbol from each layer.
  (void)workload::Figure1Sequence;
  (void)io::ParseMarkovSequence;
  (void)markov::ConditionOnAcceptance;
  (void)projector::SProjectorConfidence;
  (void)query::TopAnswerByConfidence;
  (void)db::PrefixAcceptanceSeries;
  SUCCEED();
}

}  // namespace
}  // namespace tms
