#include "workload/bio.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "markov/world_iter.h"
#include "projector/evaluator.h"
#include "test_util.h"

namespace tms::workload {
namespace {

TEST(BioTest, MotifHmmStructure) {
  MotifConfig config;
  config.consensus = "ACG";
  auto hmm = BuildMotifHmm(config);
  ASSERT_TRUE(hmm.ok()) << hmm.status();
  EXPECT_EQ(hmm->states().size(), 4u);  // bg + 3 match states
  EXPECT_EQ(hmm->observations().size(), 4u);
  // m1 prefers A with the configured fidelity.
  Symbol m1 = *hmm->states().Find("m1");
  Symbol a = *hmm->observations().Find("A");
  EXPECT_DOUBLE_EQ(hmm->Emission(m1, a), config.match_fidelity);
  // The motif chain is deterministic: m1 → m2 → m3 → bg.
  Symbol m2 = *hmm->states().Find("m2");
  Symbol m3 = *hmm->states().Find("m3");
  Symbol bg = *hmm->states().Find("bg");
  EXPECT_DOUBLE_EQ(hmm->Transition(m1, m2), 1.0);
  EXPECT_DOUBLE_EQ(hmm->Transition(m3, bg), 1.0);
}

TEST(BioTest, ConfigValidation) {
  MotifConfig bad;
  bad.consensus = "";
  EXPECT_FALSE(BuildMotifHmm(bad).ok());
  bad.consensus = "AXG";
  EXPECT_FALSE(BuildMotifHmm(bad).ok());
  bad = MotifConfig();
  bad.match_fidelity = 0.1;  // below uniform
  EXPECT_FALSE(BuildMotifHmm(bad).ok());
  bad = MotifConfig();
  bad.motif_entry_prob = 0.0;
  EXPECT_FALSE(BuildMotifHmm(bad).ok());
}

TEST(BioTest, ScenarioPosteriorIsValid) {
  MotifConfig config;
  config.consensus = "ACG";
  Rng rng(901);
  auto scenario = MakeMotifScenario(config, 8, rng);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_EQ(scenario->mu.length(), 8);
  double total = 0;
  markov::ForEachWorld(scenario->mu,
                       [&](const Str&, double p) { total += p; });
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The true label sequence has nonzero posterior mass.
  EXPECT_GT(scenario->mu.WorldProbability(scenario->true_labels), 0.0);
}

TEST(BioTest, MotifExtractionEndToEnd) {
  // A read seeded so the motif actually occurs; the extractor's ranked
  // indexed answers must match brute force, and complete occurrences of
  // "m1 m2 m3" must be the only answers besides ε-free empties.
  MotifConfig config;
  config.consensus = "ACG";
  config.match_fidelity = 0.95;
  Rng rng(907);
  auto scenario = MakeMotifScenario(config, 8, rng);
  ASSERT_TRUE(scenario.ok());
  auto extractor = MotifExtractor(config);
  ASSERT_TRUE(extractor.ok()) << extractor.status();

  auto eval =
      projector::SProjectorEvaluator::Create(&scenario->mu, &*extractor);
  ASSERT_TRUE(eval.ok());
  auto indexed = eval->TopKIndexed(10);
  auto truth =
      testing::BruteForceIndexedAnswers(scenario->mu, *extractor);
  for (const auto& r : indexed) {
    auto key = std::make_pair(r.answer.output, r.answer.index);
    ASSERT_TRUE(truth.count(key));
    EXPECT_NEAR(r.confidence, truth.at(key), 1e-9);
    // Every answer is a complete motif (length 3: m1 m2 m3).
    EXPECT_EQ(r.answer.output.size(), 3u);
    EXPECT_EQ(scenario->mu.nodes().Name(r.answer.output[0]), "m1");
    EXPECT_EQ(scenario->mu.nodes().Name(r.answer.output[2]), "m3");
  }
  // Occurrence probabilities over all start positions sum to the expected
  // number of motif occurrences (linearity of expectation) — sanity link
  // between the indexed answers and the posterior marginals.
  double occurrence_mass = 0;
  for (const auto& [key, conf] : truth) occurrence_mass += conf;
  double expected_m1 = 0;
  Symbol m1 = *scenario->mu.nodes().Find("m1");
  for (int t = 1; t + 2 <= scenario->mu.length(); ++t) {
    expected_m1 += scenario->mu.Marginal(t)[static_cast<size_t>(m1)];
  }
  EXPECT_NEAR(occurrence_mass, expected_m1, 1e-6);
}

}  // namespace
}  // namespace tms::workload
