#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tms::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroWorkersRunsSequentiallyOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  // With no workers the loop runs in submission order on the caller, so a
  // plain (non-atomic) accumulator is safe — and the order is observable.
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&order](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyAndSingletonBatches) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int64_t) { ++calls; });
  pool.ParallelFor(-3, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller (no handoff): same thread, one call.
  std::atomic<int> ran{0};
  pool.ParallelFor(1, [&ran](int64_t i) {
    EXPECT_EQ(i, 0);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  std::vector<std::string> out = pool.ParallelMap<std::string>(
      100, [](int64_t i) { return "item-" + std::to_string(i); });
  ASSERT_EQ(out.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], "item-" + std::to_string(i));
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Callers always participate in draining their own batch, so an inner
  // ParallelFor issued from inside a task completes even when every worker
  // is already busy with the outer batch.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, [&pool, &total](int64_t) {
    pool.ParallelFor(8, [&total](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ManySmallBatchesBackToBack) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&total](int64_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 200 * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(ThreadPoolTest, MapWithMoveOnlyHeavyResults) {
  ThreadPool pool(2);
  auto rows = pool.ParallelMap<std::vector<int64_t>>(50, [](int64_t i) {
    return std::vector<int64_t>(static_cast<size_t>(i % 5), i);
  });
  ASSERT_EQ(rows.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_EQ(rows[i].size(), static_cast<size_t>(i % 5));
    for (int64_t v : rows[i]) EXPECT_EQ(v, i);
  }
}

}  // namespace
}  // namespace tms::exec
