#include "io/text_format.h"

#include <gtest/gtest.h>

#include "numeric/rational.h"
#include "query/confidence.h"
#include "workload/running_example.h"

namespace tms::io {
namespace {

constexpr char kTinySequence[] = R"(
# a comment
markov-sequence
nodes x y
length 3
initial x 3/4 y 1/4
transition 1 x -> x 1/2 y 1/2
transition 1 y -> y 1
transition 2 x -> y 1
transition 2 y -> y 1
end
)";

TEST(IoTest, ParseMarkovSequence) {
  auto mu = ParseMarkovSequence(kTinySequence);
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_EQ(mu->length(), 3);
  EXPECT_EQ(mu->nodes().size(), 2u);
  EXPECT_TRUE(mu->has_exact());
  EXPECT_EQ(mu->InitialExact(0), numeric::Rational(3, 4));
  EXPECT_EQ(mu->TransitionExact(1, 0, 1), numeric::Rational(1, 2));
  EXPECT_EQ(mu->WorldProbabilityExact({0, 0, 1}), numeric::Rational(3, 8));
}

TEST(IoTest, MarkovSequenceRoundTrip) {
  markov::MarkovSequence original = workload::Figure1Sequence();
  std::string text = FormatMarkovSequence(original);
  auto parsed = ParseMarkovSequence(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->length(), original.length());
  EXPECT_TRUE(parsed->nodes() == original.nodes());
  for (const workload::Table1Row& row : workload::Table1Rows()) {
    Str world = *ParseStr(original.nodes(), row.world);
    EXPECT_EQ(parsed->WorldProbabilityExact(world),
              original.WorldProbabilityExact(world));
  }
}

TEST(IoTest, ParseMarkovSequenceErrors) {
  EXPECT_FALSE(ParseMarkovSequence("").ok());
  EXPECT_FALSE(ParseMarkovSequence("transducer\nend\n").ok());
  // Missing end.
  EXPECT_FALSE(
      ParseMarkovSequence("markov-sequence\nnodes x\nlength 1\ninitial x 1\n")
          .ok());
  // Unknown node in initial.
  EXPECT_FALSE(ParseMarkovSequence("markov-sequence\nnodes x\nlength 1\n"
                                   "initial zz 1\nend\n")
                   .ok());
  // Distribution does not sum to 1.
  EXPECT_FALSE(ParseMarkovSequence("markov-sequence\nnodes x y\nlength 1\n"
                                   "initial x 1/2\nend\n")
                   .ok());
  // Transition step out of range.
  EXPECT_FALSE(ParseMarkovSequence("markov-sequence\nnodes x\nlength 2\n"
                                   "initial x 1\ntransition 5 x -> x 1\nend\n")
                   .ok());
  // Unknown keyword.
  EXPECT_FALSE(ParseMarkovSequence("markov-sequence\nbogus\nend\n").ok());
}

TEST(IoTest, TransducerRoundTrip) {
  transducer::Transducer original = workload::Figure2Transducer();
  std::string text = FormatTransducer(original);
  auto parsed = ParseTransducer(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_states(), original.num_states());
  EXPECT_TRUE(parsed->IsDeterministic());
  // Behavioral equivalence on the Table 1 worlds.
  markov::MarkovSequence mu = workload::Figure1Sequence();
  for (const workload::Table1Row& row : workload::Table1Rows()) {
    Str world = *ParseStr(mu.nodes(), row.world);
    EXPECT_EQ(parsed->TransduceDeterministic(world),
              original.TransduceDeterministic(world));
  }
}

TEST(IoTest, ParseTransducerWithEmissions) {
  constexpr char kText[] = R"(
transducer
input a b
output x y
states 2
initial 0
accepting 1
edge 0 a -> 1 : x y
edge 0 b -> 0 :
edge 1 a -> 1 :
edge 1 b -> 0 : y
end
)";
  auto t = ParseTransducer(kText);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_states(), 2);
  EXPECT_TRUE(t->IsAccepting(1));
  EXPECT_FALSE(t->IsAccepting(0));
  auto edges = t->Next(0, 0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].output, (Str{0, 1}));  // "x y"
  EXPECT_TRUE(t->Next(0, 1)[0].output.empty());
}

TEST(IoTest, ParseTransducerErrors) {
  EXPECT_FALSE(ParseTransducer("markov-sequence\nend\n").ok());
  // Edge to out-of-range state.
  EXPECT_FALSE(ParseTransducer("transducer\ninput a\noutput x\nstates 1\n"
                               "initial 0\nedge 0 a -> 5 :\nend\n")
                   .ok());
  // Unknown emission symbol.
  EXPECT_FALSE(ParseTransducer("transducer\ninput a\noutput x\nstates 1\n"
                               "initial 0\nedge 0 a -> 0 : zz\nend\n")
                   .ok());
  // Missing states.
  EXPECT_FALSE(
      ParseTransducer("transducer\ninput a\noutput x\ninitial 0\nend\n")
          .ok());
}

TEST(IoTest, ParseSProjector) {
  constexpr char kText[] = R"(
s-projector
alphabet a b c
prefix . *
pattern a +
suffix c . *
end
)";
  auto p = ParseSProjector(kText);
  ASSERT_TRUE(p.ok()) << p.status();
  const Alphabet& ab = p->alphabet();
  Str s = *ParseStr(ab, "b a a c b");
  EXPECT_TRUE(p->Matches(s, *ParseStr(ab, "a a")));
  EXPECT_FALSE(p->Matches(s, *ParseStr(ab, "b")));
}

TEST(IoTest, SProjectorDefaultsToSimple) {
  // prefix/suffix default to ". *".
  constexpr char kText[] =
      "s-projector\nalphabet a b\npattern a\nend\n";
  auto p = ParseSProjector(kText);
  ASSERT_TRUE(p.ok()) << p.status();
  Str s = *ParseStr(p->alphabet(), "b a b");
  EXPECT_TRUE(p->Matches(s, *ParseStr(p->alphabet(), "a")));
}

TEST(IoTest, ParseSProjectorErrors) {
  EXPECT_FALSE(ParseSProjector("s-projector\nalphabet a\nend\n").ok());
  EXPECT_FALSE(
      ParseSProjector("s-projector\npattern a\nend\n").ok());  // no alphabet
  EXPECT_FALSE(
      ParseSProjector("s-projector\nalphabet a\npattern ( a\nend\n").ok());
}

TEST(IoTest, DecimalProbabilityLiterals) {
  constexpr char kText[] = R"(
markov-sequence
nodes x y
length 2
initial x 0.25 y 0.75
transition 1 x -> x 0.5 y 0.5
transition 1 y -> y 1
end
)";
  auto mu = ParseMarkovSequence(kText);
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_TRUE(mu->has_exact());  // decimals are exact decimal rationals
  EXPECT_EQ(mu->InitialExact(0), numeric::Rational(1, 4));
  EXPECT_EQ(mu->TransitionExact(1, 0, 1), numeric::Rational(1, 2));
  // Malformed decimal.
  EXPECT_FALSE(ParseMarkovSequence("markov-sequence\nnodes x\nlength 1\n"
                                   "initial x 0.2.5\nend\n")
                   .ok());
}

TEST(IoTest, DetectFormat) {
  EXPECT_EQ(*DetectFormat(kTinySequence), "markov-sequence");
  EXPECT_EQ(*DetectFormat("transducer\nend"), "transducer");
  EXPECT_EQ(*DetectFormat("# c\ns-projector\nend"), "s-projector");
  EXPECT_FALSE(DetectFormat("").ok());
  EXPECT_FALSE(DetectFormat("bogus stuff").ok());
}

TEST(IoTest, ReadFileErrors) {
  EXPECT_FALSE(ReadFile("/nonexistent/definitely/missing").ok());
}

TEST(IoTest, ParsedModelsEvaluateCorrectly) {
  // Sanity: the parsed Figure 1 + Figure 2 reproduce conf(12).
  markov::MarkovSequence mu =
      *ParseMarkovSequence(FormatMarkovSequence(workload::Figure1Sequence()));
  transducer::Transducer t =
      *ParseTransducer(FormatTransducer(workload::Figure2Transducer()));
  auto conf = query::ConfidenceDeterministicExact(
      mu, t, *ParseStr(t.output_alphabet(), "1 2"));
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(*conf, numeric::Rational(5802, 10000));
}

}  // namespace
}  // namespace tms::io
