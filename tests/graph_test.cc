#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "common/rng.h"
#include "graph/dag.h"
#include "graph/k_best_paths.h"

namespace tms::graph {
namespace {

// Brute-force enumeration of all source→sink paths with costs.
std::vector<Path> AllPathsBrute(const WeightedDag& dag, NodeId source,
                                NodeId sink) {
  std::vector<Path> out;
  Path cur;
  std::function<void(NodeId)> rec = [&](NodeId v) {
    if (v == sink) {
      out.push_back(cur);
      return;
    }
    for (EdgeId id : dag.OutEdges(v)) {
      cur.edges.push_back(id);
      cur.cost += dag.edge(id).cost;
      rec(dag.edge(id).to);
      cur.cost -= dag.edge(id).cost;
      cur.edges.pop_back();
    }
  };
  rec(source);
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    return a.cost < b.cost;
  });
  return out;
}

WeightedDag RandomLayeredDag(int layers, int width, Rng& rng) {
  WeightedDag dag(2 + layers * width);
  // Node 0 = source, 1 = sink, layered grid after.
  auto node = [width](int l, int w) { return 2 + l * width + w; };
  for (int w = 0; w < width; ++w) {
    dag.AddEdge(0, node(0, w), rng.UniformDouble() + 0.1);
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      for (int w2 = 0; w2 < width; ++w2) {
        if (rng.Bernoulli(0.7)) {
          dag.AddEdge(node(l, w), node(l + 1, w2),
                      rng.UniformDouble() + 0.1);
        }
      }
    }
  }
  for (int w = 0; w < width; ++w) {
    dag.AddEdge(node(layers - 1, w), 1, rng.UniformDouble() + 0.1);
  }
  return dag;
}

TEST(DagTest, TopologicalOrderAndCycleDetection) {
  WeightedDag dag(3);
  dag.AddEdge(0, 1, 1.0);
  dag.AddEdge(1, 2, 1.0);
  auto order = dag.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2}));

  dag.AddEdge(2, 0, 1.0);  // cycle
  EXPECT_FALSE(dag.TopologicalOrder().ok());
  EXPECT_FALSE(dag.MinCostToSink(2).ok());
}

TEST(DagTest, MinCostToSink) {
  WeightedDag dag(4);
  dag.AddEdge(0, 1, 1.0);
  dag.AddEdge(0, 2, 5.0);
  dag.AddEdge(1, 3, 1.0);
  dag.AddEdge(2, 3, 1.0);
  auto dist = dag.MinCostToSink(3);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ((*dist)[0], 2.0);
  EXPECT_DOUBLE_EQ((*dist)[1], 1.0);
  EXPECT_DOUBLE_EQ((*dist)[3], 0.0);
}

TEST(DagTest, BestPath) {
  WeightedDag dag(4);
  EdgeId e01 = dag.AddEdge(0, 1, 1.0);
  dag.AddEdge(0, 2, 5.0);
  EdgeId e13 = dag.AddEdge(1, 3, 1.0);
  dag.AddEdge(2, 3, 1.0);
  auto path = BestPath(dag, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->cost, 2.0);
  EXPECT_EQ(path->edges, (std::vector<EdgeId>{e01, e13}));
  // Unreachable sink.
  WeightedDag disconnected(2);
  EXPECT_FALSE(BestPath(disconnected, 0, 1).ok());
}

TEST(DagTest, CountPaths) {
  // Diamond chain: 2^k paths.
  WeightedDag dag(1);
  NodeId prev = 0;
  for (int i = 0; i < 10; ++i) {
    NodeId a = dag.AddNode();
    NodeId b = dag.AddNode();
    NodeId join = dag.AddNode();
    dag.AddEdge(prev, a, 1);
    dag.AddEdge(prev, b, 1);
    dag.AddEdge(a, join, 1);
    dag.AddEdge(b, join, 1);
    prev = join;
  }
  auto count = dag.CountPaths(0, prev);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1024);
}

TEST(KBestPathsTest, MatchesBruteForceOnRandomDags) {
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedDag dag = RandomLayeredDag(3, 3, rng);
    std::vector<Path> expected = AllPathsBrute(dag, 0, 1);
    KBestPathsEnumerator it(dag, 0, 1);
    std::vector<Path> got;
    while (auto p = it.Next()) got.push_back(*p);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].cost, expected[i].cost, 1e-9);
      if (i > 0) {
        EXPECT_GE(got[i].cost, got[i - 1].cost - 1e-12);
      }
    }
    // Paths are distinct.
    std::set<std::vector<EdgeId>> seen;
    for (const Path& p : got) EXPECT_TRUE(seen.insert(p.edges).second);
  }
}

TEST(KBestPathsTest, PeekDoesNotConsume) {
  WeightedDag dag(2);
  dag.AddEdge(0, 1, 3.0);
  dag.AddEdge(0, 1, 1.0);
  KBestPathsEnumerator it(dag, 0, 1);
  auto peek = it.PeekCost();
  ASSERT_TRUE(peek.has_value());
  EXPECT_DOUBLE_EQ(*peek, 1.0);
  auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->cost, 1.0);
  auto second = it.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->cost, 3.0);
  EXPECT_FALSE(it.Next().has_value());
}

TEST(KBestPathsTest, EmptyWhenNoPath) {
  WeightedDag dag(3);
  dag.AddEdge(0, 1, 1.0);  // sink 2 unreachable
  KBestPathsEnumerator it(dag, 0, 2);
  EXPECT_FALSE(it.Next().has_value());
}

TEST(KBestPathsTest, KBestConvenience) {
  Rng rng(61);
  WeightedDag dag = RandomLayeredDag(4, 3, rng);
  std::vector<Path> expected = AllPathsBrute(dag, 0, 1);
  std::vector<Path> top5 = KBestPaths(dag, 0, 1, 5);
  ASSERT_LE(top5.size(), 5u);
  for (size_t i = 0; i < top5.size(); ++i) {
    EXPECT_NEAR(top5[i].cost, expected[i].cost, 1e-9);
  }
}

TEST(KBestPathsTest, ParallelEdgesAreDistinctPaths) {
  WeightedDag dag(2);
  dag.AddEdge(0, 1, 1.0, /*payload=*/10);
  dag.AddEdge(0, 1, 1.0, /*payload=*/20);
  std::vector<Path> paths = KBestPaths(dag, 0, 1, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].edges[0], paths[1].edges[0]);
}

}  // namespace
}  // namespace tms::graph
