// k-order Markov sequences (footnote 3) and the order-reduction that
// carries every algorithm of the paper over to them.

#include "markov/korder.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "markov/world_iter.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "test_util.h"
#include "transducer/classes.h"

namespace tms::markov {
namespace {

// A 2nd-order sequence over {a, b}, length 4: the next symbol prefers to
// repeat the pattern of the last two (period-2 bias).
KOrderMarkovSequence SecondOrder() {
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  std::vector<double> initial = {0.6, 0.4};
  std::vector<KOrderMarkovSequence::ConditionalRows> transitions(3);
  // Step 1: histories of length 1.
  transitions[0][{0}] = {0.7, 0.3};
  transitions[0][{1}] = {0.2, 0.8};
  // Steps 2 and 3: histories of length 2.
  for (int step : {1, 2}) {
    transitions[static_cast<size_t>(step)][{0, 0}] = {0.9, 0.1};
    transitions[static_cast<size_t>(step)][{0, 1}] = {0.8, 0.2};
    transitions[static_cast<size_t>(step)][{1, 0}] = {0.3, 0.7};
    transitions[static_cast<size_t>(step)][{1, 1}] = {0.1, 0.9};
  }
  auto mu = KOrderMarkovSequence::Create(ab, 2, initial, transitions);
  EXPECT_TRUE(mu.ok()) << mu.status();
  return std::move(mu).value();
}

// All 2^4 worlds with their k-order probabilities.
void ForEachKOrderWorld(const KOrderMarkovSequence& mu,
                        const std::function<void(const Str&, double)>& fn) {
  const int n = mu.length();
  for (int bits = 0; bits < (1 << n); ++bits) {
    Str world;
    for (int i = 0; i < n; ++i) {
      world.push_back((bits >> i) & 1);
    }
    fn(world, mu.WorldProbability(world));
  }
}

TEST(KOrderTest, WorldProbabilitiesSumToOne) {
  KOrderMarkovSequence mu = SecondOrder();
  EXPECT_EQ(mu.length(), 4);
  EXPECT_EQ(mu.order(), 2);
  double total = 0;
  ForEachKOrderWorld(mu, [&](const Str&, double p) { total += p; });
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(KOrderTest, WorldProbabilityUsesFullHistory) {
  KOrderMarkovSequence mu = SecondOrder();
  // p(a b a a) = 0.6 · 0.3 · P(a | ab) · P(a | ba) = 0.6·0.3·0.8·0.3.
  EXPECT_NEAR(mu.WorldProbability({0, 1, 0, 0}), 0.6 * 0.3 * 0.8 * 0.3,
              1e-12);
  // A first-order chain could not distinguish P(a|ab)=0.8 from
  // P(a|bb)=0.1; verify both appear.
  EXPECT_NEAR(mu.WorldProbability({1, 1, 0, 0}), 0.4 * 0.8 * 0.1 * 0.3,
              1e-12);
}

TEST(KOrderTest, ToFirstOrderPreservesWorldProbabilities) {
  KOrderMarkovSequence mu = SecondOrder();
  auto lifted = mu.ToFirstOrder();
  ASSERT_TRUE(lifted.ok()) << lifted.status();
  // Lifted nodes: Σ + Σ² = 2 + 4 = 6.
  EXPECT_EQ(lifted->mu.nodes().size(), 6u);

  // Sum the lifted worlds by their projection; must match exactly.
  std::map<Str, double> projected;
  ForEachWorld(lifted->mu, [&](const Str& w, double p) {
    projected[lifted->ProjectWorld(w)] += p;
  });
  ForEachKOrderWorld(mu, [&](const Str& world, double p) {
    double lifted_p = projected.count(world) ? projected.at(world) : 0.0;
    EXPECT_NEAR(lifted_p, p, 1e-12) << FormatStr(
        *Alphabet::FromNames({"a", "b"}), world);
  });
}

TEST(KOrderTest, LiftedQueriesMatchKOrderBruteForce) {
  // The footnote's content: run a transducer query against the k-order
  // data by lifting it, and check confidences against the k-order brute
  // force.
  KOrderMarkovSequence mu = SecondOrder();
  auto lifted = mu.ToFirstOrder();
  ASSERT_TRUE(lifted.ok());

  // Query: emit x whenever "b" follows "a" (a Mealy-style detector).
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  Alphabet out = *Alphabet::FromNames({"x", "y"});
  transducer::Transducer t(ab, out, 2);
  t.SetInitial(0);
  t.SetAllAccepting();
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {}).ok());   // a from a-state
  ASSERT_TRUE(t.AddTransition(0, 1, 1, {}).ok());   // b: remember
  ASSERT_TRUE(t.AddTransition(1, 0, 0, {0}).ok());  // a after b: emit x
  ASSERT_TRUE(t.AddTransition(1, 1, 1, {1}).ok());  // b after b: emit y

  auto lifted_t = lifted->LiftTransducer(t);
  ASSERT_TRUE(lifted_t.ok()) << lifted_t.status();

  // Brute-force k-order confidences.
  std::map<Str, double> expected;
  ForEachKOrderWorld(mu, [&](const Str& world, double p) {
    if (p <= 0) return;
    for (const Str& o : t.TransduceAll(world)) expected[o] += p;
  });
  auto got = testing::BruteForceAnswers(lifted->mu, *lifted_t);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [o, conf] : expected) {
    ASSERT_TRUE(got.count(o));
    EXPECT_NEAR(got.at(o), conf, 1e-12);
    // And via the polynomial algorithm on the lifted instance.
    auto dp = query::Confidence(lifted->mu, *lifted_t, o);
    ASSERT_TRUE(dp.ok());
    EXPECT_NEAR(*dp, conf, 1e-9);
  }
}

TEST(KOrderTest, ValidationErrors) {
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  // Missing reachable history row.
  std::vector<KOrderMarkovSequence::ConditionalRows> missing(1);
  missing[0][{0}] = {0.5, 0.5};  // history {b} missing but reachable
  EXPECT_FALSE(
      KOrderMarkovSequence::Create(ab, 2, {0.5, 0.5}, missing).ok());
  // Row does not sum to 1.
  std::vector<KOrderMarkovSequence::ConditionalRows> bad(1);
  bad[0][{0}] = {0.5, 0.4};
  bad[0][{1}] = {0.5, 0.5};
  EXPECT_FALSE(KOrderMarkovSequence::Create(ab, 2, {1.0, 0.0}, bad).ok());
  // order < 1.
  EXPECT_FALSE(KOrderMarkovSequence::Create(ab, 0, {1.0, 0.0}, {}).ok());
  // Valid length-1.
  EXPECT_TRUE(KOrderMarkovSequence::Create(ab, 3, {1.0, 0.0}, {}).ok());
}

TEST(KOrderTest, OrderOneMatchesFirstOrderSemantics) {
  // k = 1 reduces to an ordinary Markov sequence (histories of length 1).
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  std::vector<KOrderMarkovSequence::ConditionalRows> transitions(2);
  for (int step : {0, 1}) {
    transitions[static_cast<size_t>(step)][{0}] = {0.9, 0.1};
    transitions[static_cast<size_t>(step)][{1}] = {0.4, 0.6};
  }
  auto mu = KOrderMarkovSequence::Create(ab, 1, {0.5, 0.5}, transitions);
  ASSERT_TRUE(mu.ok());
  auto lifted = mu->ToFirstOrder();
  ASSERT_TRUE(lifted.ok());
  EXPECT_EQ(lifted->mu.nodes().size(), 2u);  // histories = Σ
  EXPECT_NEAR(lifted->mu.WorldProbability({0, 0, 1}), 0.5 * 0.9 * 0.1,
              1e-12);
}

}  // namespace
}  // namespace tms::markov
