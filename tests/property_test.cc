// Deep randomized property suites that cut across modules: arithmetic
// fuzzing against native wide integers, automata algebra laws, k-best-path
// stress with ties, and serialization round-trips of random models.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "automata/ops.h"
#include "automata/regex.h"
#include "common/rng.h"
#include "graph/k_best_paths.h"
#include "io/text_format.h"
#include "numeric/bigint.h"
#include "query/confidence.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

TEST(BigIntPropertyTest, MatchesInt128OnWideOperands) {
  const uint64_t seed = testing::TestSeed(501);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t a = rng.UniformInt(INT64_MIN / 4, INT64_MAX / 4);
    int64_t b = rng.UniformInt(INT64_MIN / 4, INT64_MAX / 4);
    __int128 wide = static_cast<__int128>(a) * b;
    // Render the __int128 product in decimal for comparison.
    bool negative = wide < 0;
    unsigned __int128 mag =
        negative ? -static_cast<unsigned __int128>(wide)
                 : static_cast<unsigned __int128>(wide);
    std::string expected;
    if (mag == 0) expected = "0";
    while (mag != 0) {
      expected.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
      mag /= 10;
    }
    if (negative && expected != "0") expected.push_back('-');
    std::reverse(expected.begin(), expected.end());
    EXPECT_EQ((numeric::BigInt(a) * numeric::BigInt(b)).ToString(), expected);

    if (b != 0) {
      EXPECT_EQ((numeric::BigInt(a) / numeric::BigInt(b)).ToString(),
                std::to_string(a / b));
      // Division identity on the wide product.
      numeric::BigInt product = numeric::BigInt(a) * numeric::BigInt(b);
      EXPECT_EQ(product / numeric::BigInt(b), numeric::BigInt(a));
    }
  }
}

TEST(BigIntPropertyTest, DivModIdentity) {
  const uint64_t seed = testing::TestSeed(503);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    // Random big operands built from several 63-bit chunks.
    auto random_big = [&rng]() {
      numeric::BigInt v(rng.UniformInt(-1000000, 1000000));
      int chunks = static_cast<int>(rng.UniformInt(0, 3));
      for (int c = 0; c < chunks; ++c) {
        v = v * numeric::BigInt(rng.UniformInt(1, INT64_MAX)) +
            numeric::BigInt(rng.UniformInt(-1000, 1000));
      }
      return v;
    };
    numeric::BigInt a = random_big();
    numeric::BigInt b = random_big();
    if (b.IsZero()) continue;
    numeric::BigInt q = a / b;
    numeric::BigInt r = a % b;
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Abs(), b.Abs());
    // Remainder carries the dividend's sign (or is zero).
    if (!r.IsZero()) {
      EXPECT_EQ(r.Sign(), a.Sign());
    }
  }
}

TEST(AutomataPropertyTest, ComplementLawsHold) {
  const uint64_t seed = testing::TestSeed(509);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Alphabet ab = workload::MakeSymbols(2);
  for (int trial = 0; trial < 25; ++trial) {
    automata::Nfa nfa = workload::RandomNfa(ab, 4, 1.2, rng);
    automata::Dfa dfa = automata::Determinize(nfa);
    automata::Dfa comp = automata::Complement(dfa);
    // L ∪ ¬L = Σ*, L ∩ ¬L = ∅.
    EXPECT_TRUE(automata::IsUniversal(
        automata::Product(dfa, comp, automata::BoolOp::kOr)));
    EXPECT_TRUE(automata::IsEmpty(
        automata::Product(dfa, comp, automata::BoolOp::kAnd).ToNfa()));
    // Double complement is the identity.
    EXPECT_TRUE(automata::Equivalent(automata::Complement(comp), dfa));
  }
}

TEST(AutomataPropertyTest, MinimizationIsCanonicalInSize) {
  // Two differently-built automata for the same language minimize to the
  // same number of states (Myhill–Nerode canonicity).
  const uint64_t seed = testing::TestSeed(521);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Alphabet ab = workload::MakeSymbols(2);
  for (int trial = 0; trial < 20; ++trial) {
    automata::Nfa a = workload::RandomNfa(ab, 3, 1.2, rng);
    automata::Nfa b = workload::RandomNfa(ab, 3, 1.2, rng);
    // Build L(a) ∪ L(b) two ways: NfaUnion, and DFA product-of-or.
    automata::Dfa via_nfa =
        automata::Minimize(automata::Determinize(automata::NfaUnion(a, b)));
    automata::Dfa via_product = automata::Minimize(
        automata::Product(automata::Determinize(a), automata::Determinize(b),
                          automata::BoolOp::kOr));
    EXPECT_TRUE(automata::Equivalent(via_nfa, via_product));
    EXPECT_EQ(via_nfa.num_states(), via_product.num_states());
  }
}

TEST(AutomataPropertyTest, ShortestAcceptedIsShortestAndAccepted) {
  const uint64_t seed = testing::TestSeed(523);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Alphabet ab = workload::MakeSymbols(2);
  for (int trial = 0; trial < 30; ++trial) {
    automata::Nfa nfa = workload::RandomNfa(ab, 4, 0.8, rng, 0.3);
    auto shortest = automata::ShortestAccepted(nfa);
    if (!shortest.has_value()) {
      EXPECT_TRUE(automata::IsEmpty(nfa));
      continue;
    }
    EXPECT_TRUE(nfa.Accepts(*shortest));
    // Nothing shorter is accepted.
    for (size_t len = 0; len < shortest->size(); ++len) {
      EXPECT_TRUE(
          automata::EnumerateAcceptedStrings(nfa, static_cast<int>(len))
              .empty());
    }
  }
}

TEST(AutomataPropertyTest, RegexAlgebra) {
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  // (a|b)* is universal.
  EXPECT_TRUE(
      automata::IsUniversal(*automata::CompileRegexToDfa(ab, "( a | b ) *")));
  // a* a = a+ (as languages).
  EXPECT_TRUE(automata::Equivalent(*automata::CompileRegexToDfa(ab, "a * a"),
                                   *automata::CompileRegexToDfa(ab, "a +")));
  // (ab)+ vs a(ba)*b.
  EXPECT_TRUE(automata::Equivalent(
      *automata::CompileRegexToDfa(ab, "( a b ) +"),
      *automata::CompileRegexToDfa(ab, "a ( b a ) * b")));
  // ¬(anything with an a) = b*.
  automata::Dfa no_a =
      automata::Complement(*automata::CompileRegexToDfa(ab, ". * a . *"));
  EXPECT_TRUE(
      automata::Equivalent(no_a, *automata::CompileRegexToDfa(ab, "b *")));
}

TEST(GraphPropertyTest, KBestHandlesHeavyTies) {
  // A layered DAG where every edge has cost 1: all paths tie; the
  // enumerator must still emit each exactly once.
  graph::WeightedDag dag(2 + 3 * 4);
  auto node = [](int l, int w) { return 2 + l * 4 + w; };
  for (int w = 0; w < 4; ++w) dag.AddEdge(0, node(0, w), 1.0);
  for (int l = 0; l + 1 < 3; ++l) {
    for (int w = 0; w < 4; ++w) {
      for (int w2 = 0; w2 < 4; ++w2) {
        dag.AddEdge(node(l, w), node(l + 1, w2), 1.0);
      }
    }
  }
  for (int w = 0; w < 4; ++w) dag.AddEdge(node(2, w), 1, 1.0);
  // 4 first-layer choices × 4 × 4 = 64 paths, all of cost 4.
  auto count_check = dag.CountPaths(0, 1);
  ASSERT_TRUE(count_check.ok());
  EXPECT_EQ(*count_check, 64);
  graph::KBestPathsEnumerator it(dag, 0, 1);
  std::set<std::vector<graph::EdgeId>> seen;
  int count = 0;
  while (auto p = it.Next()) {
    EXPECT_DOUBLE_EQ(p->cost, 4.0);
    EXPECT_TRUE(seen.insert(p->edges).second);
    ++count;
  }
  EXPECT_EQ(count, 64);
}

TEST(IoPropertyTest, RandomModelRoundTrips) {
  const uint64_t seed = testing::TestSeed(541);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    // Random transducer round-trip: behavior preserved on random inputs.
    Alphabet ab = workload::MakeSymbols(2);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.max_emission = 2;
    transducer::Transducer t = workload::RandomTransducer(ab, opts, rng);
    auto parsed = io::ParseTransducer(io::FormatTransducer(t));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    for (int probe = 0; probe < 10; ++probe) {
      Str input;
      int len = static_cast<int>(rng.UniformInt(0, 5));
      for (int i = 0; i < len; ++i) {
        input.push_back(static_cast<Symbol>(rng.UniformInt(0, 1)));
      }
      EXPECT_EQ(parsed->TransduceAll(input), t.TransduceAll(input));
    }

    // Random (double-valued) Markov sequence round-trip: probabilities are
    // serialized as exact dyadic rationals, so they survive bit-for-bit.
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    auto mu2 = io::ParseMarkovSequence(io::FormatMarkovSequence(mu));
    ASSERT_TRUE(mu2.ok()) << mu2.status();
    markov::ForEachWorld(mu, [&](const Str& w, double p) {
      EXPECT_DOUBLE_EQ(mu2->WorldProbability(w), p);
    });
  }
}

TEST(ConfidencePropertyTest, AnswersSumToAcceptanceMass) {
  // Σ_o conf(o) = Pr(S ∈ L(A)) for deterministic transducers (each world
  // contributes its mass to exactly one answer).
  const uint64_t seed = testing::TestSeed(547);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.deterministic = true;
    opts.max_emission = 1;
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto answers = testing::BruteForceAnswers(mu, t);
    double total = 0;
    for (const auto& [o, conf] : answers) total += conf;
    double accept_mass = 0;
    markov::ForEachWorld(mu, [&](const Str& w, double p) {
      if (t.TransduceDeterministic(w).has_value()) accept_mass += p;
    });
    EXPECT_NEAR(total, accept_mass, 1e-9);
    // Cross-check each conf through the facade.
    for (const auto& [o, conf] : answers) {
      auto got = query::Confidence(mu, t, o);
      ASSERT_TRUE(got.ok());
      EXPECT_NEAR(*got, conf, 1e-9);
    }
  }
}

}  // namespace
}  // namespace tms
