#include "db/event_query.h"

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "common/rng.h"
#include "markov/world_iter.h"
#include "workload/random_models.h"

namespace tms::db {
namespace {

// Brute-force Pr(S_[1,t] ∈ L) via prefix-marginalized world enumeration.
std::vector<double> BrutePrefixSeries(const markov::MarkovSequence& mu,
                                      const automata::Dfa& dfa,
                                      bool fired_semantics) {
  const int n = mu.length();
  std::vector<double> series(static_cast<size_t>(n), 0.0);
  markov::ForEachWorld(mu, [&](const Str& w, double p) {
    bool fired = false;
    for (int t = 1; t <= n; ++t) {
      Str prefix(w.begin(), w.begin() + t);
      bool accepted = dfa.Accepts(prefix);
      fired = fired || accepted;
      if (fired_semantics ? fired : accepted) {
        series[static_cast<size_t>(t - 1)] += p;
      }
    }
  });
  return series;
}

TEST(EventQueryTest, PrefixSeriesMatchesBruteForce) {
  Rng rng(801);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);
    automata::Dfa dfa = workload::RandomDfa(mu.nodes(), 3, rng, 0.4);
    auto got = PrefixAcceptanceSeries(mu, dfa);
    auto expected = BrutePrefixSeries(mu, dfa, /*fired_semantics=*/false);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_NEAR(got[t], expected[t], 1e-9) << "t=" << t;
    }
  }
}

TEST(EventQueryTest, FiredSeriesMatchesBruteForceAndIsMonotone) {
  Rng rng(803);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 5, 2, rng);
    automata::Dfa dfa = workload::RandomDfa(mu.nodes(), 3, rng, 0.4);
    auto got = EventFiredSeries(mu, dfa);
    auto expected = BrutePrefixSeries(mu, dfa, /*fired_semantics=*/true);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_NEAR(got[t], expected[t], 1e-9) << "t=" << t;
      if (t > 0) {
        EXPECT_GE(got[t] + 1e-12, got[t - 1]) << "fired series not monotone";
      }
    }
  }
}

TEST(EventQueryTest, KnownSeries) {
  // Event "saw node n1": under an iid fair chain, fired-by-t = 1 - 2^{-t}.
  Rng rng(805);
  Alphabet nodes = workload::MakeSymbols(2, "n");
  std::vector<double> initial = {0.5, 0.5};
  std::vector<std::vector<double>> transitions(3, {0.5, 0.5, 0.5, 0.5});
  auto mu = markov::MarkovSequence::Create(nodes, initial, transitions);
  ASSERT_TRUE(mu.ok());
  auto saw_n1 = automata::CompileRegexToDfa(nodes, ". * n1 . *");
  ASSERT_TRUE(saw_n1.ok());
  auto series = EventFiredSeries(*mu, *saw_n1);
  ASSERT_EQ(series.size(), 4u);
  for (int t = 1; t <= 4; ++t) {
    EXPECT_NEAR(series[static_cast<size_t>(t - 1)],
                1.0 - std::pow(0.5, t), 1e-12);
  }
  // For this suffix-closed event, prefix-acceptance == fired semantics.
  auto prefix = PrefixAcceptanceSeries(*mu, *saw_n1);
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_NEAR(prefix[t], series[t], 1e-12);
  }
}

TEST(EventQueryTest, CollectionSeries) {
  Rng rng(807);
  Alphabet nodes = workload::MakeSymbols(2, "n");
  SequenceCollection c(nodes);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(c.Insert("k" + std::to_string(i),
                         workload::RandomMarkovSequence(2, 4, 2, rng))
                    .ok());
  }
  auto dfa = automata::CompileRegexToDfa(nodes, ". * n0");
  ASSERT_TRUE(dfa.ok());
  auto series = CollectionEventSeries(c, *dfa);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 3u);
  for (const auto& [key, s] : *series) {
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s, EventFiredSeries(**c.Get(key), *dfa));
  }
  // Alphabet mismatch rejected.
  Alphabet other = workload::MakeSymbols(3, "x");
  EXPECT_FALSE(
      CollectionEventSeries(c, automata::Dfa::AcceptAll(other)).ok());
}

}  // namespace
}  // namespace tms::db
