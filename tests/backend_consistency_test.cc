// Backend-identity contract, end to end: an engine must produce the same
// bytes on the dense and the CSR-sparse kernel paths — the sparse layer
// skips only ⊕-identity entries of reductions evaluated in the dense
// order (see kernels/sparse.h), so not just the answers but the scores
// and their order are bitwise equal, at every thread count, under every
// --backend= request. Also covers the engine factory front door: kind
// dispatch, Status on alphabet mismatch, and owned-input streams that
// outlive their construction arguments. Seeds obey TMS_TEST_SEED.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/engine_options.h"
#include "exec/thread_pool.h"
#include "kernels/backend.h"
#include "projector/sprojector.h"
#include "query/confidence.h"
#include "query/engine_factory.h"
#include "query/membership.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

using kernels::BackendChoice;

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

// Large-alphabet instance in the sparse regime: |Σ|=24 with 3-entry rows
// (density 0.125 ≤ kAutoSparseMaxDensity, dim ≥ kAutoSparseMinDim), so
// kAuto actually resolves to the sparse backend here.
Instance SparseInstance(Rng& rng, int n = 6) {
  markov::MarkovSequence mu =
      workload::RandomHomogeneousMarkovSequence(24, n, /*support=*/3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

// Small dense inhomogeneous instance (dim < kAutoSparseMinDim): kAuto
// resolves to dense, and a forced kSparse exercises the explicit request
// (or its counted fallback when no CSR was built).
Instance DenseInstance(Rng& rng) {
  const int sigma = static_cast<int>(rng.UniformInt(2, 3));
  const int n = static_cast<int>(rng.UniformInt(2, 4));
  markov::MarkovSequence mu =
      workload::RandomMarkovSequence(sigma, n, /*support=*/sigma, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = static_cast<int>(rng.UniformInt(2, 3));
  opts.density = 1.2;
  opts.max_emission = 2;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

// Drains up to `guard` answers of the given engine kind through the
// factory. All enumerator construction in this suite goes through
// query::MakeEnumerator — the same door the CLI and batch layers use.
std::vector<ranking::ScoredAnswer> Drain(query::EnumeratorKind kind,
                                         const Instance& inst,
                                         BackendChoice backend,
                                         exec::ThreadPool* pool = nullptr,
                                         int guard = 30) {
  exec::EngineOptions options;
  options.pool = pool;
  options.backend = backend;
  auto it = query::MakeEnumerator(kind, inst.mu, inst.t, options);
  if (!it.ok()) {
    ADD_FAILURE() << "MakeEnumerator: " << it.status();
    return {};
  }
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < guard; ++i) {
    auto answer = (*it)->Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

// Byte-identical streams: same length, same outputs, bitwise-equal scores,
// same order.
void ExpectSameStream(const std::vector<ranking::ScoredAnswer>& got,
                      const std::vector<ranking::ScoredAnswer>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].output, want[i].output) << what << " answer " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " answer " << i;
  }
}

TEST(BackendConsistencyTest, EmaxStreamIdenticalAcrossBackendsAndThreads) {
  const uint64_t seed = testing::TestSeed(9101);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    for (bool sparse_regime : {true, false}) {
      Instance inst =
          sparse_regime ? SparseInstance(rng) : DenseInstance(rng);
      const std::vector<ranking::ScoredAnswer> reference =
          Drain(query::EnumeratorKind::kEmax, inst, BackendChoice::kDense);
      for (BackendChoice backend :
           {BackendChoice::kDense, BackendChoice::kSparse,
            BackendChoice::kAuto}) {
        for (int threads : {1, 2, 8}) {
          std::optional<exec::ThreadPool> pool;
          if (threads > 1) pool.emplace(threads - 1);
          std::vector<ranking::ScoredAnswer> stream =
              Drain(query::EnumeratorKind::kEmax, inst, backend,
                    pool ? &*pool : nullptr);
          ExpectSameStream(
              stream, reference,
              std::string(sparse_regime ? "sparse-regime" : "dense-regime") +
                  " backend=" + kernels::BackendChoiceName(backend) +
                  " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(BackendConsistencyTest, UnrankedStreamIdenticalAcrossBackends) {
  const uint64_t seed = testing::TestSeed(9102);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    for (bool sparse_regime : {true, false}) {
      Instance inst =
          sparse_regime ? SparseInstance(rng, /*n=*/4) : DenseInstance(rng);
      const std::vector<ranking::ScoredAnswer> reference =
          Drain(query::EnumeratorKind::kUnranked, inst, BackendChoice::kDense);
      for (BackendChoice backend :
           {BackendChoice::kSparse, BackendChoice::kAuto}) {
        std::vector<ranking::ScoredAnswer> stream =
            Drain(query::EnumeratorKind::kUnranked, inst, backend);
        ExpectSameStream(stream, reference,
                         std::string("unranked backend=") +
                             kernels::BackendChoiceName(backend));
      }
    }
  }
}

TEST(BackendConsistencyTest, MembershipAgreesAcrossBackends) {
  const uint64_t seed = testing::TestSeed(9103);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    Instance inst = trial % 2 == 0 ? SparseInstance(rng, /*n=*/4)
                                   : DenseInstance(rng);
    EXPECT_EQ(query::HasAnyAnswer(inst.mu, inst.t, BackendChoice::kDense),
              query::HasAnyAnswer(inst.mu, inst.t, BackendChoice::kSparse));
    std::vector<ranking::ScoredAnswer> answers =
        Drain(query::EnumeratorKind::kUnranked, inst, BackendChoice::kDense,
              nullptr, /*guard=*/5);
    for (const ranking::ScoredAnswer& a : answers) {
      EXPECT_EQ(
          query::IsPossibleAnswer(inst.mu, inst.t, a.output,
                                  BackendChoice::kDense),
          query::IsPossibleAnswer(inst.mu, inst.t, a.output,
                                  BackendChoice::kSparse))
          << "answer of size " << a.output.size();
      // Every prefix, including the empty one — and a perturbed
      // non-answer, which both backends must reject identically.
      for (size_t len = 0; len <= a.output.size(); ++len) {
        Str prefix(a.output.begin(), a.output.begin() + len);
        EXPECT_EQ(query::HasAnswerWithPrefix(inst.mu, inst.t, prefix,
                                             BackendChoice::kDense),
                  query::HasAnswerWithPrefix(inst.mu, inst.t, prefix,
                                             BackendChoice::kSparse))
            << "prefix of size " << len;
      }
      Str bogus = a.output;
      bogus.insert(bogus.end(), 0);  // one extra symbol; may not be an answer
      EXPECT_EQ(query::IsPossibleAnswer(inst.mu, inst.t, bogus,
                                        BackendChoice::kDense),
                query::IsPossibleAnswer(inst.mu, inst.t, bogus,
                                        BackendChoice::kSparse));
    }
  }
}

TEST(BackendConsistencyTest, DeterministicConfidenceBitwiseIdentical) {
  const uint64_t seed = testing::TestSeed(9104);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    // SparseInstance transducers are deterministic by construction.
    Instance inst = SparseInstance(rng, /*n=*/5);
    std::vector<ranking::ScoredAnswer> answers =
        Drain(query::EnumeratorKind::kEmax, inst, BackendChoice::kDense,
              nullptr, /*guard=*/5);
    for (const ranking::ScoredAnswer& a : answers) {
      auto dense = query::ConfidenceDeterministic(inst.mu, inst.t, a.output,
                                                  BackendChoice::kDense);
      auto sparse = query::ConfidenceDeterministic(inst.mu, inst.t, a.output,
                                                   BackendChoice::kSparse);
      auto aut = query::ConfidenceDeterministic(inst.mu, inst.t, a.output,
                                                BackendChoice::kAuto);
      ASSERT_TRUE(dense.ok()) << dense.status();
      ASSERT_TRUE(sparse.ok()) << sparse.status();
      ASSERT_TRUE(aut.ok()) << aut.status();
      // Bitwise, not approximately: the sparse DP skips only exact zeros
      // of a nonnegative sum evaluated in the dense order.
      EXPECT_EQ(*dense, *sparse);
      EXPECT_EQ(*dense, *aut);
    }
  }
}

TEST(BackendConsistencyTest, FactoryDispatchesAndValidates) {
  const uint64_t seed = testing::TestSeed(9105);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  EXPECT_STREQ(query::EnumeratorKindName(query::EnumeratorKind::kEmax),
               "emax");
  EXPECT_STREQ(query::EnumeratorKindName(query::EnumeratorKind::kUnranked),
               "unranked");

  // Alphabet mismatch is a Status, not a crash: transducer over a 3-node
  // alphabet, model over 2 nodes.
  Instance inst = DenseInstance(rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  transducer::Transducer wrong =
      workload::RandomTransducer(workload::MakeSymbols(
                                     static_cast<int>(inst.mu.nodes().size()) +
                                         1,
                                     "n"),
                                 opts, rng);
  for (query::EnumeratorKind kind :
       {query::EnumeratorKind::kEmax, query::EnumeratorKind::kUnranked}) {
    auto it = query::MakeEnumerator(kind, inst.mu, wrong);
    EXPECT_FALSE(it.ok()) << query::EnumeratorKindName(kind);
  }

  // Owned-input streams keep enumerating after the construction arguments
  // are gone; the stream must equal the borrowed one byte for byte.
  std::vector<ranking::ScoredAnswer> borrowed =
      Drain(query::EnumeratorKind::kEmax, inst, BackendChoice::kAuto);
  std::unique_ptr<ranking::AnswerStream> owned_stream;
  {
    markov::MarkovSequence mu_copy = inst.mu;
    transducer::Transducer t_copy = inst.t;
    auto owned = query::MakeEnumeratorWithOwnedInputs(
        query::EnumeratorKind::kEmax, std::move(mu_copy), std::move(t_copy));
    ASSERT_TRUE(owned.ok()) << owned.status();
    owned_stream = std::move(*owned);
  }  // temporaries dead here; the stream owns its inputs
  std::vector<ranking::ScoredAnswer> owned_answers;
  for (int i = 0; i < 30; ++i) {
    auto answer = owned_stream->Next();
    if (!answer.has_value()) break;
    owned_answers.push_back(std::move(*answer));
  }
  ExpectSameStream(owned_answers, borrowed, "owned-vs-borrowed");
}

TEST(BackendConsistencyTest, FactoryBuildsSProjectorStreams) {
  const uint64_t seed = testing::TestSeed(9106);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  Alphabet ab = workload::MakeSymbols(2, "n");
  auto p = projector::SProjector::FromRegex(ab, ". *", "n0 +", ". *");
  ASSERT_TRUE(p.ok()) << p.status();
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);

  auto borrowed = query::MakeEnumerator(mu, *p);
  ASSERT_TRUE(borrowed.ok()) << borrowed.status();
  std::vector<ranking::ScoredAnswer> reference;
  while (auto a = (*borrowed)->Next()) reference.push_back(std::move(*a));
  EXPECT_FALSE(reference.empty());

  std::unique_ptr<ranking::AnswerStream> owned_stream;
  {
    markov::MarkovSequence mu_copy = mu;
    projector::SProjector p_copy = *p;
    auto owned = query::MakeEnumeratorWithOwnedInputs(std::move(mu_copy),
                                                      std::move(p_copy));
    ASSERT_TRUE(owned.ok()) << owned.status();
    owned_stream = std::move(*owned);
  }
  std::vector<ranking::ScoredAnswer> owned_answers;
  while (auto a = owned_stream->Next()) owned_answers.push_back(std::move(*a));
  ExpectSameStream(owned_answers, reference, "sprojector owned-vs-borrowed");

  // Mismatched projector alphabet → Status.
  auto p3 = projector::SProjector::FromRegex(workload::MakeSymbols(3, "n"),
                                             ". *", "n0 +", ". *");
  ASSERT_TRUE(p3.ok()) << p3.status();
  auto bad = query::MakeEnumerator(mu, *p3);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace tms
