#include "projector/sprojector.h"

#include <gtest/gtest.h>

#include <set>

#include "automata/regex.h"
#include "common/rng.h"
#include "markov/builder.h"
#include "projector/sprojector_confidence.h"
#include "query/confidence_exact.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms::projector {
namespace {

Alphabet Binary() { return *Alphabet::FromNames({"0", "1"}); }

// A random s-projector over the given alphabet.
SProjector RandomSProjector(const Alphabet& ab, Rng& rng, int states = 2) {
  auto p = SProjector::Create(workload::RandomDfa(ab, states, rng, 0.6),
                              workload::RandomDfa(ab, states, rng, 0.6),
                              workload::RandomDfa(ab, states, rng, 0.6));
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(SProjectorTest, CreateValidatesAlphabets) {
  Alphabet ab = Binary();
  Alphabet other = *Alphabet::FromNames({"x"});
  EXPECT_FALSE(SProjector::Create(automata::Dfa::AcceptAll(ab),
                                  automata::Dfa::AcceptAll(other),
                                  automata::Dfa::AcceptAll(ab))
                   .ok());
}

TEST(SProjectorTest, FromRegexAndMatches) {
  Alphabet ab = Binary();
  // Extract a run of 1s ("1 +") preceded by anything and followed by
  // anything starting with 0.
  auto p = SProjector::FromRegex(ab, ". *", "1 +", "0 . *");
  ASSERT_TRUE(p.ok()) << p.status();
  Str s = *ParseStr(ab, "0 1 1 0 1");
  EXPECT_TRUE(p->Matches(s, *ParseStr(ab, "1 1")));
  EXPECT_TRUE(p->Matches(s, *ParseStr(ab, "1")));
  EXPECT_FALSE(p->Matches(s, *ParseStr(ab, "0")));       // pattern mismatch
  EXPECT_FALSE(p->Matches(s, *ParseStr(ab, "1 1 1")));   // no occurrence
  // The final "1" has no following 0, so the suffix constraint kills it.
  EXPECT_FALSE(p->MatchesIndexed(s, IndexedAnswer{*ParseStr(ab, "1"), 5}));
  // A match at index 2 is followed by "1 0 1", which violates "0 . *".
  EXPECT_FALSE(p->MatchesIndexed(s, IndexedAnswer{*ParseStr(ab, "1"), 2}));
  EXPECT_TRUE(p->MatchesIndexed(s, IndexedAnswer{*ParseStr(ab, "1"), 3}));
  EXPECT_TRUE(p->MatchesIndexed(s, IndexedAnswer{*ParseStr(ab, "1 1"), 2}));
}

TEST(SProjectorTest, IndexedMatchSemantics) {
  Alphabet ab = Binary();
  auto p = SProjector::Simple(*automata::CompileRegexToDfa(ab, "1 +"));
  ASSERT_TRUE(p.ok());
  Str s = *ParseStr(ab, "1 0 1");
  EXPECT_TRUE(p->MatchesIndexed(s, IndexedAnswer{{1}, 1}));
  EXPECT_FALSE(p->MatchesIndexed(s, IndexedAnswer{{1}, 2}));  // s[2] = 0
  EXPECT_TRUE(p->MatchesIndexed(s, IndexedAnswer{{1}, 3}));
  EXPECT_FALSE(p->MatchesIndexed(s, IndexedAnswer{{1}, 4}));  // out of range
  EXPECT_FALSE(p->MatchesIndexed(s, IndexedAnswer{{1}, 0}));
}

TEST(SProjectorTest, EmptyPatternAnswers) {
  Alphabet ab = Binary();
  // A = {ε}: answers are (ε, i) wherever prefix/suffix split works.
  auto p = SProjector::Create(automata::Dfa::AcceptAll(ab),
                              automata::Dfa::EmptyStringOnly(ab),
                              automata::Dfa::AcceptAll(ab));
  ASSERT_TRUE(p.ok());
  Str s = *ParseStr(ab, "0 1");
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(p->MatchesIndexed(s, IndexedAnswer{{}, i})) << i;
  }
  EXPECT_TRUE(p->Matches(s, {}));
}

TEST(SProjectorTest, ToTransducerEquivalence) {
  // The converted transducer transduces s into o iff the s-projector does
  // (the paper's "easy observation"). Randomized property sweep.
  Rng rng(113);
  Alphabet ab = Binary();
  for (int trial = 0; trial < 30; ++trial) {
    SProjector p = RandomSProjector(ab, rng);
    transducer::Transducer t = p.ToTransducer();
    EXPECT_TRUE(t.IsProjector());
    for (int n = 1; n <= 4; ++n) {
      for (int bits = 0; bits < (1 << n); ++bits) {
        Str s;
        for (int i = 0; i < n; ++i) s.push_back((bits >> i) & 1);
        // Compare answer sets.
        std::set<Str> from_transducer;
        for (const Str& o : t.TransduceAll(s)) from_transducer.insert(o);
        std::set<Str> from_projector;
        for (int i = 1; i <= n + 1; ++i) {
          for (int len = 0; i + len - 1 <= n; ++len) {
            if (len > 0 && i > n) break;
            Str o(s.begin() + (i - 1), s.begin() + (i - 1 + len));
            if (p.MatchesIndexed(s, IndexedAnswer{o, i})) {
              from_projector.insert(o);
            }
          }
        }
        EXPECT_EQ(from_transducer, from_projector)
            << "world " << FormatStr(ab, s);
      }
    }
  }
}

TEST(SProjectorConfidenceTest, MatchesBruteForce) {
  Rng rng(127);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    auto truth = testing::BruteForceSProjectorAnswers(mu, p);
    for (const auto& [o, expected] : truth) {
      auto conf = SProjectorConfidence(mu, p, o);
      ASSERT_TRUE(conf.ok()) << conf.status();
      EXPECT_NEAR(*conf, expected, 1e-9) << FormatStr(p.alphabet(), o);
    }
    // A non-answer has zero confidence.
    Str probe = {0, 0, 0, 0, 0};
    if (!truth.count(probe)) {
      auto conf = SProjectorConfidence(mu, p, probe);
      ASSERT_TRUE(conf.ok());
      EXPECT_NEAR(*conf, 0.0, 1e-12);
    }
  }
}

TEST(SProjectorConfidenceTest, AgreesWithTransducerExactAlgorithm) {
  // conf via the concatenation DFA == conf via the generalized subset DP
  // on the converted transducer (two fully independent code paths).
  Rng rng(131);
  for (int trial = 0; trial < 10; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    SProjector p = RandomSProjector(mu.nodes(), rng);
    transducer::Transducer t = p.ToTransducer();
    auto truth = testing::BruteForceSProjectorAnswers(mu, p);
    for (const auto& [o, expected] : truth) {
      auto via_dfa = SProjectorConfidence(mu, p, o);
      auto via_exact = query::ConfidenceExact(mu, t, o);
      ASSERT_TRUE(via_dfa.ok());
      ASSERT_TRUE(via_exact.ok());
      EXPECT_NEAR(*via_dfa, *via_exact, 1e-9);
    }
  }
}

TEST(SProjectorConfidenceTest, StatsExposeConcatBlowup) {
  markov::MarkovSequenceBuilder b({"0", "1"}, 6);
  b.SetInitial("0", {1, 2});
  b.SetInitial("1", {1, 2});
  for (const char* from : {"0", "1"}) {
    b.SetAllTransitions(from, "0", {1, 2});
    b.SetAllTransitions(from, "1", {1, 2});
  }
  auto mu_or = b.Build();
  ASSERT_TRUE(mu_or.ok());
  markov::MarkovSequence mu = std::move(mu_or).value();
  Alphabet ab = Binary();
  // Suffix constraint with a larger DFA: strings whose 3rd-from-last
  // symbol is 1 (the classic exponential-reversal language).
  auto e = automata::CompileRegexToDfa(ab, ". * 1 . .");
  ASSERT_TRUE(e.ok());
  auto p = SProjector::Create(automata::Dfa::AcceptAll(ab),
                              automata::Dfa::AcceptAll(ab), *e);
  ASSERT_TRUE(p.ok());
  SProjectorConfidenceStats stats;
  auto conf = SProjectorConfidence(mu, *p, {0}, &stats);
  ASSERT_TRUE(conf.ok());
  EXPECT_GT(stats.concat_dfa_states, e->num_states());
  // The state guard triggers.
  auto blocked = SProjectorConfidence(mu, *p, {0}, nullptr, 2);
  EXPECT_FALSE(blocked.ok());
}

TEST(SProjectorConfidenceTest, ExactRationalVariant) {
  markov::MarkovSequenceBuilder b({"0", "1"}, 3);
  b.SetInitial("0", {1, 2});
  b.SetInitial("1", {1, 2});
  b.SetAllTransitions("0", "0", {1, 2});
  b.SetAllTransitions("0", "1", {1, 2});
  b.SetAllTransitions("1", "0", {1, 2});
  b.SetAllTransitions("1", "1", {1, 2});
  auto mu = b.Build();
  ASSERT_TRUE(mu.ok());
  Alphabet ab = Binary();
  auto p = SProjector::Simple(*automata::CompileRegexToDfa(ab, "1 +"));
  ASSERT_TRUE(p.ok());
  // conf("1") = Pr(world contains at least one 1) = 1 - (1/2)^3 = 7/8.
  auto conf = SProjectorConfidenceExact(*mu, *p, {1});
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(*conf, numeric::Rational(7, 8));
}

TEST(AcceptanceProbabilityTest, MatchesBruteForce) {
  Rng rng(137);
  for (int trial = 0; trial < 15; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    automata::Dfa dfa = workload::RandomDfa(mu.nodes(), 3, rng);
    double expected = 0;
    markov::ForEachWorld(mu, [&](const Str& w, double prob) {
      if (dfa.Accepts(w)) expected += prob;
    });
    EXPECT_NEAR(AcceptanceProbability(mu, dfa), expected, 1e-9);
  }
}

}  // namespace
}  // namespace tms::projector
