// The truncation contract, property-tested over random models: whenever a
// RunContext limit fires — answer cap, work budget, expired deadline — the
// emitted stream is a byte-identical prefix of the unbounded stream, at
// every thread count, for every enumeration engine. Small instances are
// additionally cross-checked against the possible-world ground truth so
// "prefix of the unbounded stream" also means "prefix of the right
// stream". Run just these suites with `ctest -L robustness`; seeds obey
// TMS_TEST_SEED (see testing::TestSeed).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "projector/imax_enum.h"
#include "projector/sprojector.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "test_util.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance RandomInstance(Rng& rng) {
  const int sigma = static_cast<int>(rng.UniformInt(2, 3));
  const int n = static_cast<int>(rng.UniformInt(2, 4));
  markov::MarkovSequence mu = workload::RandomMarkovSequence(
      sigma, n, /*support=*/sigma, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = static_cast<int>(rng.UniformInt(2, 3));
  opts.density = 1.2;
  opts.max_emission = 2;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

// Drains a ranked enumeration bounded by `run` (null = unbounded), with a
// hard iteration guard so a bug cannot hang the suite.
std::vector<ranking::ScoredAnswer> DrainEmax(const Instance& inst,
                                             exec::ThreadPool* pool,
                                             exec::RunContext* run,
                                             int guard = 500) {
  query::EmaxEnumerator it(inst.mu, inst.t,
                           query::EmaxEnumerator::Options{pool, nullptr, run});
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < guard; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

std::vector<Str> DrainUnranked(const Instance& inst, exec::RunContext* run,
                               int guard = 2000) {
  query::UnrankedEnumerator it(inst.mu, inst.t, run);
  std::vector<Str> out;
  for (int i = 0; i < guard; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(answer->output));
  }
  return out;
}

// Byte-identical prefix: same outputs, same scores, in the same order.
void ExpectPrefix(const std::vector<ranking::ScoredAnswer>& prefix,
                  const std::vector<ranking::ScoredAnswer>& full) {
  ASSERT_LE(prefix.size(), full.size());
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].output, full[i].output) << "answer " << i;
    EXPECT_EQ(prefix[i].score, full[i].score) << "answer " << i;
  }
}

TEST(PrefixConsistencyTest, AnswerCapYieldsExactPrefixAtEveryThreadCount) {
  const uint64_t seed = testing::TestSeed(8101);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    for (int threads : {1, 2, 8}) {
      std::optional<exec::ThreadPool> pool;
      if (threads > 1) pool.emplace(threads - 1);
      for (size_t cap : {size_t{0}, size_t{1}, full.size() / 2, full.size()}) {
        exec::RunContext run;
        run.set_max_answers(static_cast<int64_t>(cap));
        std::vector<ranking::ScoredAnswer> bounded =
            DrainEmax(inst, pool ? &*pool : nullptr, &run);
        ASSERT_EQ(bounded.size(), std::min(cap, full.size()))
            << "threads=" << threads << " cap=" << cap;
        ExpectPrefix(bounded, full);
        EXPECT_TRUE(run.status().ok());  // client cap: OK + truncated
        if (cap < full.size()) {
          EXPECT_TRUE(run.truncated());
        }
      }
    }
  }
}

TEST(PrefixConsistencyTest, BudgetTruncationIsDeterministicAcrossThreads) {
  const uint64_t seed = testing::TestSeed(8102);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    for (int64_t budget : {int64_t{1}, int64_t{3}, int64_t{8}, int64_t{50}}) {
      // The per-pop charge totals are thread-count-independent, so the pop
      // at which the pool drains — and hence the emitted answer count — is
      // the same at every thread count.
      std::optional<std::vector<ranking::ScoredAnswer>> reference;
      for (int threads : {1, 2, 8}) {
        std::optional<exec::ThreadPool> pool;
        if (threads > 1) pool.emplace(threads - 1);
        exec::RunContext run;
        run.set_work_budget(budget);
        std::vector<ranking::ScoredAnswer> bounded =
            DrainEmax(inst, pool ? &*pool : nullptr, &run);
        ExpectPrefix(bounded, full);
        if (bounded.size() < full.size()) {
          EXPECT_TRUE(run.truncated());
          EXPECT_EQ(run.status().code(), StatusCode::kBudgetExhausted);
        }
        EXPECT_LE(run.work_charged(), budget);
        if (!reference.has_value()) {
          reference = std::move(bounded);
        } else {
          ASSERT_EQ(bounded.size(), reference->size())
              << "threads=" << threads << " budget=" << budget;
          ExpectPrefix(bounded, *reference);
        }
      }
    }
  }
}

TEST(PrefixConsistencyTest, ExpiredDeadlineEmitsNothingButStopsCleanly) {
  const uint64_t seed = testing::TestSeed(8103);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst = RandomInstance(rng);
    exec::RunContext run;
    run.set_deadline(exec::RunContext::Clock::now() -
                     std::chrono::milliseconds(1));
    std::vector<ranking::ScoredAnswer> bounded =
        DrainEmax(inst, nullptr, &run);
    EXPECT_TRUE(bounded.empty());
    EXPECT_TRUE(run.truncated());
    EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(PrefixConsistencyTest, LiveDeadlineStillYieldsAPrefix) {
  const uint64_t seed = testing::TestSeed(8104);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    for (int threads : {1, 8}) {
      std::optional<exec::ThreadPool> pool;
      if (threads > 1) pool.emplace(threads - 1);
      exec::RunContext run;
      // Tight but live: where the stream stops is timing-dependent, but
      // whatever comes out must be a prefix.
      run.set_deadline_after_ms(2);
      std::vector<ranking::ScoredAnswer> bounded =
          DrainEmax(inst, pool ? &*pool : nullptr, &run);
      ExpectPrefix(bounded, full);
      if (run.truncated()) {
        EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
      }
    }
  }
}

TEST(PrefixConsistencyTest, FullStreamMatchesBruteForceGroundTruth) {
  const uint64_t seed = testing::TestSeed(8105);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<ranking::ScoredAnswer> full =
        DrainEmax(inst, nullptr, nullptr);
    auto truth = testing::BruteForceAnswers(inst.mu, inst.t);
    ASSERT_EQ(full.size(), truth.size());
    double prev = std::numeric_limits<double>::infinity();
    std::set<Str> seen;
    for (const ranking::ScoredAnswer& a : full) {
      EXPECT_LE(a.score, prev) << "ranked stream must be nonincreasing";
      prev = a.score;
      EXPECT_TRUE(seen.insert(a.output).second) << "duplicate answer";
      ASSERT_TRUE(truth.count(a.output)) << "answer not in ground truth";
      EXPECT_NEAR(a.score, testing::BruteForceEmax(inst.mu, inst.t, a.output),
                  1e-9);
    }
  }
}

TEST(PrefixConsistencyTest, UnrankedBudgetTruncationIsAPrefix) {
  const uint64_t seed = testing::TestSeed(8106);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = RandomInstance(rng);
    const std::vector<Str> full = DrainUnranked(inst, nullptr);
    for (int64_t budget : {int64_t{1}, int64_t{5}, int64_t{20}}) {
      exec::RunContext run;
      run.set_work_budget(budget);
      std::vector<Str> bounded = DrainUnranked(inst, &run);
      ASSERT_LE(bounded.size(), full.size());
      for (size_t i = 0; i < bounded.size(); ++i) {
        EXPECT_EQ(bounded[i], full[i]) << "answer " << i;
      }
      if (bounded.size() < full.size()) {
        EXPECT_TRUE(run.truncated());
        EXPECT_EQ(run.status().code(), StatusCode::kBudgetExhausted);
      }
    }
    // Answer caps on the unranked engine, too.
    exec::RunContext capped;
    capped.set_max_answers(1);
    std::vector<Str> one = DrainUnranked(inst, &capped);
    EXPECT_EQ(one.size(), std::min<size_t>(1, full.size()));
    if (!full.empty()) {
      EXPECT_EQ(one[0], full[0]);
    }
  }
}

TEST(PrefixConsistencyTest, ImaxEnumeratorHonorsTheContract) {
  const uint64_t seed = testing::TestSeed(8107);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // RandomMarkovSequence interns its nodes as n0, n1, ... — the projector
  // must share that alphabet exactly.
  Alphabet ab = workload::MakeSymbols(2, "n");
  auto p = projector::SProjector::FromRegex(ab, ". *", "n0 +", ". *");
  ASSERT_TRUE(p.ok()) << p.status();
  for (int trial = 0; trial < 6; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    auto full_it = projector::ImaxEnumerator::Create(&mu, &*p);
    ASSERT_TRUE(full_it.ok());
    std::vector<ranking::ScoredAnswer> full;
    while (auto a = full_it->Next()) full.push_back(std::move(*a));
    for (size_t cap = 0; cap <= full.size(); ++cap) {
      for (int threads : {1, 8}) {
        std::optional<exec::ThreadPool> pool;
        if (threads > 1) pool.emplace(threads - 1);
        exec::RunContext run;
        run.set_max_answers(static_cast<int64_t>(cap));
        auto it = projector::ImaxEnumerator::Create(
            &mu, &*p, pool ? &*pool : nullptr, &run);
        ASSERT_TRUE(it.ok());
        std::vector<ranking::ScoredAnswer> bounded;
        while (auto a = it->Next()) bounded.push_back(std::move(*a));
        ASSERT_EQ(bounded.size(), cap);
        ExpectPrefix(bounded, full);
      }
    }
  }
}

}  // namespace
}  // namespace tms
