#include "query/membership.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(MembershipTest, RunningExampleAnswers) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& out = fig2.output_alphabet();
  EXPECT_TRUE(IsPossibleAnswer(mu, fig2, *ParseStr(out, "1 2")));
  EXPECT_TRUE(IsPossibleAnswer(mu, fig2, *ParseStr(out, "2 1 λ")));
  EXPECT_TRUE(IsPossibleAnswer(mu, fig2, {}));  // ε is an answer (row w)
  EXPECT_FALSE(IsPossibleAnswer(mu, fig2, *ParseStr(out, "λ")));
  EXPECT_FALSE(IsPossibleAnswer(mu, fig2, *ParseStr(out, "1 1")));
  EXPECT_TRUE(HasAnyAnswer(mu, fig2));
  EXPECT_TRUE(HasAnswerWithPrefix(mu, fig2, *ParseStr(out, "2 1")));
  EXPECT_FALSE(HasAnswerWithPrefix(mu, fig2, *ParseStr(out, "λ")));
}

TEST(MembershipTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(71);
  for (int trial = 0; trial < 25; ++trial) {
    Alphabet in = workload::MakeSymbols(2);
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 3;
    opts.max_emission = 2;
    opts.deterministic = rng.Bernoulli(0.5);
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);
    // Every brute-force answer must be recognized; a few non-answers must
    // be rejected.
    for (const auto& [o, conf] : truth) {
      EXPECT_TRUE(IsPossibleAnswer(mu, t, o)) << "missed answer";
      // Every prefix of an answer passes the prefix test.
      for (size_t l = 0; l <= o.size(); ++l) {
        Str prefix(o.begin(), o.begin() + static_cast<long>(l));
        EXPECT_TRUE(HasAnswerWithPrefix(mu, t, prefix));
      }
    }
    EXPECT_EQ(HasAnyAnswer(mu, t), !truth.empty());
    // Random probe strings.
    for (int probe = 0; probe < 10; ++probe) {
      Str o;
      int len = static_cast<int>(rng.UniformInt(0, 6));
      for (int i = 0; i < len; ++i) {
        o.push_back(static_cast<Symbol>(rng.UniformInt(0, 1)));
      }
      EXPECT_EQ(IsPossibleAnswer(mu, t, o), truth.count(o) > 0)
          << "probe mismatch";
    }
  }
}

TEST(MembershipTest, SelectiveTransducerMayHaveNoAnswers) {
  // A transducer whose NFA accepts nothing reachable.
  Alphabet ab = workload::MakeSymbols(2, "n");
  Rng rng(5);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  transducer::Transducer t(mu.nodes(), ab, 1);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {}).ok());
  // No accepting states.
  EXPECT_FALSE(HasAnyAnswer(mu, t));
  EXPECT_FALSE(IsPossibleAnswer(mu, t, {}));
}

}  // namespace
}  // namespace tms::query
