#include "query/top_confidence.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "markov/builder.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::query {
namespace {

TEST(TopConfidenceTest, RunningExampleOptimum) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto result = TopAnswerByConfidence(mu, fig2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(FormatStrCompact(fig2.output_alphabet(), result->output), "12");
  EXPECT_NEAR(result->confidence, 0.5802, 1e-12);
  EXPECT_TRUE(result->certified_optimal);  // the stream was exhausted
}

TEST(TopConfidenceTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(601);
  for (int trial = 0; trial < 20; ++trial) {
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    workload::RandomTransducerOptions opts;
    opts.num_states = 2;
    opts.max_emission = 1;
    opts.deterministic = rng.Bernoulli(0.5);
    transducer::Transducer t =
        workload::RandomTransducer(mu.nodes(), opts, rng);
    auto truth = testing::BruteForceAnswers(mu, t);

    auto result = TopAnswerByConfidence(mu, t);
    if (truth.empty()) {
      EXPECT_FALSE(result.ok());
      continue;
    }
    ASSERT_TRUE(result.ok()) << result.status();
    double best = 0;
    for (const auto& [o, conf] : truth) best = std::max(best, conf);
    EXPECT_NEAR(result->confidence, best, 1e-9);
    EXPECT_NEAR(truth.at(result->output), best, 1e-9);
    EXPECT_TRUE(result->certified_optimal);  // unlimited budget
  }
}

TEST(TopConfidenceTest, CertificateFiresEarlyOnConcentratedInstance) {
  // One dominant answer with confidence far above W · (next E_max level).
  markov::MarkovSequenceBuilder b({"a", "b"}, 3);
  b.SetInitial("a", {99, 100});
  b.SetInitial("b", {1, 100});
  for (const char* from : {"a", "b"}) {
    b.SetAllTransitions(from, "a", {99, 100});
    b.SetAllTransitions(from, "b", {1, 100});
  }
  auto mu = b.Build();
  ASSERT_TRUE(mu.ok());
  // Identity Mealy machine: 8 answers, "a a a" has conf ≈ 0.97.
  Alphabet ab = *Alphabet::FromNames({"a", "b"});
  transducer::Transducer t(ab, ab, 1);
  t.SetAccepting(0, true);
  ASSERT_TRUE(t.AddTransition(0, 0, 0, {0}).ok());
  ASSERT_TRUE(t.AddTransition(0, 1, 0, {1}).ok());

  auto result = TopAnswerByConfidence(*mu, t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output, (Str{0, 0, 0}));
  EXPECT_TRUE(result->certified_optimal);
  // W = 8 support worlds; after the top answer (conf = E_max ≈ 0.9703),
  // the next E_max level is ≈ 0.0098 and 8·0.0098 < 0.97 — the bound must
  // have fired after a handful of answers, not all 8.
  EXPECT_LE(result->answers_explored, 3);
}

TEST(TopConfidenceTest, BudgetLimitsExploration) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto result = TopAnswerByConfidence(mu, fig2, /*max_candidates=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers_explored, 1);
  // With one candidate it finds "12" (the E_max top) but cannot certify
  // unless the bound already fired.
  EXPECT_EQ(FormatStrCompact(fig2.output_alphabet(), result->output), "12");
}

TEST(TopConfidenceTest, AlphabetMismatchRejected) {
  Rng rng(607);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 3, 3, rng);
  transducer::Transducer fig2 = workload::Figure2Transducer();
  EXPECT_FALSE(TopAnswerByConfidence(mu, fig2).ok());
}

}  // namespace
}  // namespace tms::query
