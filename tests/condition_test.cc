#include "markov/condition.h"

#include <gtest/gtest.h>

#include <map>

#include "automata/regex.h"
#include "common/rng.h"
#include "markov/world_iter.h"
#include "query/confidence.h"
#include "test_util.h"
#include "workload/random_models.h"
#include "workload/running_example.h"

namespace tms::markov {
namespace {

TEST(ConditionTest, PosteriorMatchesBayesRule) {
  Rng rng(701);
  for (int trial = 0; trial < 15; ++trial) {
    MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
    automata::Dfa event = workload::RandomDfa(mu.nodes(), 3, rng, 0.4);

    // Ground truth: Pr(w | accept) = p(w)·[accept] / Z.
    double z = 0;
    std::map<Str, double> joint;
    ForEachWorld(mu, [&](const Str& w, double p) {
      if (event.Accepts(w)) {
        joint[w] = p;
        z += p;
      }
    });
    auto conditioned = ConditionOnAcceptance(mu, event);
    if (z == 0) {
      EXPECT_FALSE(conditioned.ok());
      continue;
    }
    ASSERT_TRUE(conditioned.ok()) << conditioned.status();
    EXPECT_NEAR(conditioned->event_probability, z, 1e-12);

    std::map<Str, double> projected;
    ForEachWorld(conditioned->mu, [&](const Str& w, double p) {
      projected[conditioned->ProjectWorld(w)] += p;
    });
    ASSERT_EQ(projected.size(), joint.size());
    for (const auto& [w, p] : joint) {
      ASSERT_TRUE(projected.count(w));
      EXPECT_NEAR(projected.at(w), p / z, 1e-9);
    }
  }
}

TEST(ConditionTest, ZeroProbabilityEventRejected) {
  Rng rng(703);
  MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  EXPECT_FALSE(
      ConditionOnAcceptance(mu, automata::Dfa::AcceptNone(mu.nodes())).ok());
  // Alphabet mismatch.
  Alphabet other = workload::MakeSymbols(3, "x");
  EXPECT_FALSE(
      ConditionOnAcceptance(mu, automata::Dfa::AcceptAll(other)).ok());
}

TEST(ConditionTest, ConditioningOnEverythingIsIdentity) {
  Rng rng(707);
  MarkovSequence mu = workload::RandomMarkovSequence(2, 4, 2, rng);
  auto conditioned =
      ConditionOnAcceptance(mu, automata::Dfa::AcceptAll(mu.nodes()));
  ASSERT_TRUE(conditioned.ok());
  EXPECT_NEAR(conditioned->event_probability, 1.0, 1e-12);
  ForEachWorld(conditioned->mu, [&](const Str& w, double p) {
    EXPECT_NEAR(mu.WorldProbability(conditioned->ProjectWorld(w)), p, 1e-9);
  });
}

TEST(ConditionTest, LiftedQueryComputesConditionalConfidence) {
  // Query the running example GIVEN that the cart ends in Room 2:
  // conf(o | event) must equal conf-restricted-to-event / Pr(event).
  MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  auto ends_r2 =
      automata::CompileRegexToDfa(mu.nodes(), ". * ( r2a | r2b )");
  ASSERT_TRUE(ends_r2.ok());
  auto conditioned = ConditionOnAcceptance(mu, *ends_r2);
  ASSERT_TRUE(conditioned.ok());
  auto lifted = conditioned->LiftTransducer(fig2);
  ASSERT_TRUE(lifted.ok());

  // Brute-force conditional confidence of "12".
  Str twelve = *ParseStr(fig2.output_alphabet(), "1 2");
  double z = 0, hit = 0;
  ForEachWorld(mu, [&](const Str& w, double p) {
    if (!ends_r2->Accepts(w)) return;
    z += p;
    if (fig2.Transduces(w, twelve)) hit += p;
  });
  ASSERT_GT(z, 0);

  auto conf = query::Confidence(conditioned->mu, *lifted, twelve);
  ASSERT_TRUE(conf.ok()) << conf.status();
  EXPECT_NEAR(*conf, hit / z, 1e-9);
  // Conditioning raises the confidence of 12 (all three 12-worlds end in
  // r2a).
  EXPECT_GT(*conf, 0.5802);
}

TEST(ConditionTest, LiftedTransducerRejectsWrongAlphabet) {
  Rng rng(709);
  MarkovSequence mu = workload::RandomMarkovSequence(2, 3, 2, rng);
  auto conditioned =
      ConditionOnAcceptance(mu, automata::Dfa::AcceptAll(mu.nodes()));
  ASSERT_TRUE(conditioned.ok());
  EXPECT_FALSE(
      conditioned->LiftTransducer(workload::Figure2Transducer()).ok());
}

}  // namespace
}  // namespace tms::markov
