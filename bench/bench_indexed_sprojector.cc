// E9 — Table 2, column "indexed s-projectors": the fully tractable cell.
// Ranked enumeration in EXACT decreasing confidence with polynomial delay
// (Theorem 5.7, via k-best paths on the occurrence DAG), and per-answer
// confidence in O(n·|Σ|²·|Q|²) (Theorem 5.8). The reproduction table
// measures enumeration delay and confidence time as n grows — both must
// stay polynomial, with the emitted stream verified sorted.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "projector/indexed_confidence.h"
#include "projector/indexed_enum.h"
#include "workload/text.h"

namespace tms {
namespace {

// OCR read of a synthetic form line of length n.
markov::MarkovSequence MakeOcr(int n, uint64_t seed) {
  Rng rng(seed);
  std::string line = workload::MakeFormLine("hillary", n, rng);
  workload::OcrConfig ocr;
  ocr.char_accuracy = 0.9;
  ocr.confusion_spread = 1;
  return std::move(workload::OcrSequence(line, ocr)).value();
}

void PrintReproduction() {
  bench::PrintHeader(
      "E9: indexed s-projectors (Theorems 5.7 / 5.8)",
      "exact decreasing-confidence enumeration with polynomial delay + "
      "PTIME confidence. Expected shape: per-answer delay polynomial in n "
      "and flat across ranks; stream sorted by confidence.");

  auto p = std::move(workload::NameExtractor()).value();
  std::printf("%-6s %-12s %-14s %-14s %-10s %-14s\n", "n", "answers",
              "setup (ms)", "max delay(ms)", "sorted?", "conf/ans (µs)");
  for (int n : {32, 64, 128, 256, 512}) {
    markov::MarkovSequence mu = MakeOcr(n, 107);
    Stopwatch setup;
    auto it = projector::IndexedEnumerator::Create(&mu, &p);
    double setup_ms = setup.ElapsedSeconds() * 1e3;

    Stopwatch watch;
    double max_ms = 0;
    bool sorted = true;
    double prev = 1e300;
    int count = 0;
    std::vector<projector::IndexedAnswer> emitted;
    while (count < 200) {
      watch.Restart();
      auto r = it->Next();
      double ms = watch.ElapsedSeconds() * 1e3;
      if (!r.has_value()) break;
      ++count;
      max_ms = std::max(max_ms, ms);
      if (r->confidence > prev + 1e-12) sorted = false;
      prev = r->confidence;
      emitted.push_back(r->answer);
    }

    // Theorem 5.8: amortized per-answer confidence after one precompute.
    auto conf = projector::IndexedConfidence::Create(&mu, &p);
    Stopwatch conf_watch;
    double checksum = 0;
    for (const auto& answer : emitted) {
      checksum += conf->Confidence(answer);
    }
    double conf_us = emitted.empty()
                         ? 0.0
                         : conf_watch.ElapsedSeconds() * 1e6 /
                               static_cast<double>(emitted.size());
    benchmark::DoNotOptimize(checksum);
    std::printf("%-6d %-12d %-14.2f %-14.3f %-10s %-14.2f\n", n, count,
                setup_ms, max_ms, sorted ? "yes" : "NO", conf_us);
  }
}

void BM_IndexedEnumeratorSetup(benchmark::State& state) {
  markov::MarkovSequence mu = MakeOcr(static_cast<int>(state.range(0)), 109);
  auto p = std::move(workload::NameExtractor()).value();
  for (auto _ : state) {
    auto it = projector::IndexedEnumerator::Create(&mu, &p);
    benchmark::DoNotOptimize(it);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IndexedEnumeratorSetup)->Arg(32)->Arg(128)->Arg(512);

void BM_IndexedTop100(benchmark::State& state) {
  markov::MarkovSequence mu = MakeOcr(static_cast<int>(state.range(0)), 113);
  auto p = std::move(workload::NameExtractor()).value();
  for (auto _ : state) {
    auto results = projector::TopKIndexed(mu, p, 100);
    benchmark::DoNotOptimize(results);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IndexedTop100)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_IndexedConfidencePerAnswer(benchmark::State& state) {
  markov::MarkovSequence mu = MakeOcr(static_cast<int>(state.range(0)), 127);
  auto p = std::move(workload::NameExtractor()).value();
  auto conf = projector::IndexedConfidence::Create(&mu, &p);
  auto results = projector::TopKIndexed(mu, p, 10);
  if (results.empty()) {
    state.SkipWithError("no answers");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    double c = conf->Confidence(results[i % results.size()].answer);
    benchmark::DoNotOptimize(c);
    ++i;
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IndexedConfidencePerAnswer)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("indexed_sprojector");
  tms::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
