// E2 — Table 2, row 1, column "deterministic": confidence computation is
// PTIME for deterministic transducers (Theorem 4.6, O(|o|·n·|Σ|²·|Q|²));
// the k-uniform fast path drops the |o| factor. The sweeps verify the
// claimed polynomial scaling in n, |Q|, and |o|.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/confidence.h"
#include "workload/random_models.h"

namespace tms {
namespace {

constexpr int kSigma = 4;

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
  Str answer;
};

Instance MakeInstance(int n, int states, bool uniform, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu =
      workload::RandomMarkovSequence(kSigma, n, kSigma, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = states;
  opts.deterministic = true;
  opts.uniform_k = uniform ? 1 : -1;
  opts.max_emission = 2;
  opts.accept_prob = 1.0;  // non-selective keeps answers plentiful
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto answer = bench::SampleAnswer(mu, t, rng);
  return Instance{std::move(mu), std::move(t),
                  answer.has_value() ? *answer : Str{}};
}

// Scaling in the Markov-sequence length n (|Q| fixed).
void BM_DetConfidence_N(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 4,
                               /*uniform=*/false, 1);
  for (auto _ : state) {
    auto conf = query::ConfidenceDeterministic(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["answer_len"] = static_cast<double>(inst.answer.size());
}
BENCHMARK(BM_DetConfidence_N)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// Scaling in the number of transducer states |Q| (n fixed).
void BM_DetConfidence_Q(benchmark::State& state) {
  Instance inst = MakeInstance(128, static_cast<int>(state.range(0)),
                               /*uniform=*/false, 2);
  for (auto _ : state) {
    auto conf = query::ConfidenceDeterministic(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["Q"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DetConfidence_Q)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// The k-uniform fast path vs the general DP on the same instance
// (Theorem 4.6's two bounds).
void BM_DetConfidenceUniformFastPath(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 4,
                               /*uniform=*/true, 3);
  for (auto _ : state) {
    auto conf =
        query::ConfidenceDeterministicUniform(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DetConfidenceUniformFastPath)->Arg(64)->Arg(256)->Arg(1024);

void BM_DetConfidenceGeneralOnUniform(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 4,
                               /*uniform=*/true, 3);
  for (auto _ : state) {
    auto conf = query::ConfidenceDeterministic(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DetConfidenceGeneralOnUniform)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("confidence_deterministic");
  tms::bench::PrintHeader(
      "E2: confidence computation, deterministic transducers (Theorem 4.6)",
      "PTIME — O(|o|·n·|Σ|²·|Q|²); O(k·n·|Σ|²·|Q|²) when k-uniform. "
      "Expected shape: time roughly quadratic in n for the general DP "
      "(|o| grows with n), linear in n for the uniform fast path, and "
      "polynomial in |Q|.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
