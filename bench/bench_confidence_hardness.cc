// E4 — Table 2, row 1, column "general": confidence computation is
// FP^{#P}-complete for nondeterministic non-uniform transducers
// (Proposition 4.7, Theorem 4.9). The reproduction table runs the exact
// generalized-subset algorithm on the monotone-bipartite-2-DNF counting
// family and shows (a) it recovers #SAT/2^{p+q} exactly and (b) its DP
// width — the number of distinct reachable (state, position) pair-sets —
// blows up with the formula, which is precisely where the #P-hardness
// bites.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "query/approx.h"
#include "query/confidence_exact.h"
#include "reductions/dnf2.h"

namespace tms {
namespace {

void PrintReproduction() {
  bench::PrintHeader(
      "E4: confidence, general transducers (Prop. 4.7 / Thm 4.9)",
      "FP^{#P}-complete: conf(z^n) = |L(A) ∩ Σ^n| / |Σ|^n encodes #SAT of "
      "monotone bipartite 2-DNF. Expected shape: the exact algorithm's DP "
      "width (and time) grows quickly with formula size while remaining "
      "exact.");

  std::printf("%-10s %-6s %-14s %-14s %-12s %-10s\n", "(p,q,terms)", "n",
              "conf(z^n)", "#SAT/2^n", "max width", "entries");
  Rng rng(23);
  for (int size = 2; size <= 6; ++size) {
    reductions::Dnf2Formula f = reductions::Dnf2Formula::Random(
        size, size, std::min(size * size, 2 * size), rng);
    auto instance = reductions::Dnf2CountingInstance(f);
    if (!instance.ok()) continue;
    query::ExactConfidenceStats stats;
    auto conf = query::ConfidenceExact(instance->mu, instance->t,
                                       instance->answer, &stats);
    double expected = 0.0;
    if (size <= 6) {
      expected = f.BruteForceCount().ToDouble() /
                 std::pow(2.0, f.num_x + f.num_y);
    }
    std::printf("(%d,%d,%zu)%*s %-6d %-14.8f %-14.8f %-12lld %-10lld\n",
                f.num_x, f.num_y, f.terms.size(),
                size >= 4 ? 2 : 3, "", f.num_x + f.num_y, *conf, expected,
                static_cast<long long>(stats.max_layer_width),
                static_cast<long long>(stats.total_entries));
  }
}

// Ablation: the Monte-Carlo estimator (the paper's open "approximate
// confidence" direction) against the exact algorithm on the same hard
// family — constant per-sample cost and additive error vs exact-but-
// exponential.
void PrintMonteCarloAblation() {
  std::printf(
      "\nAblation — Monte-Carlo estimation vs exact (additive ±err @95%%):\n");
  std::printf("%-10s %-14s %-20s %-14s\n", "(p,q)", "exact",
              "MC (20k samples)", "±err bound");
  Rng rng(31);
  for (int size = 3; size <= 6; ++size) {
    reductions::Dnf2Formula f = reductions::Dnf2Formula::Random(
        size, size, std::min(size * size, 2 * size), rng);
    auto instance = reductions::Dnf2CountingInstance(f);
    if (!instance.ok()) continue;
    auto exact = query::ConfidenceExact(instance->mu, instance->t,
                                        instance->answer);
    Rng mc_rng(47);
    auto mc = query::ConfidenceMonteCarlo(instance->mu, instance->t,
                                          instance->answer, 20000, mc_rng);
    std::printf("(%d,%d)      %-14.6f %-20.6f %-14.4f\n", size, size, *exact,
                mc.estimate, mc.error_bound95);
  }
}

void BM_MonteCarloConfidence(benchmark::State& state) {
  const int size = 6;
  Rng rng(29);
  reductions::Dnf2Formula f =
      reductions::Dnf2Formula::Random(size, size, 2 * size, rng);
  auto instance = reductions::Dnf2CountingInstance(f);
  Rng mc_rng(53);
  const int64_t samples = state.range(0);
  for (auto _ : state) {
    auto mc = query::ConfidenceMonteCarlo(instance->mu, instance->t,
                                          instance->answer, samples, mc_rng);
    benchmark::DoNotOptimize(mc);
  }
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_MonteCarloConfidence)->Arg(1000)->Arg(10000);

void BM_ExactConfidenceHardFamily(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(29);
  reductions::Dnf2Formula f = reductions::Dnf2Formula::Random(
      size, size, std::min(size * size, 2 * size), rng);
  auto instance = reductions::Dnf2CountingInstance(f);
  query::ExactConfidenceStats stats;
  for (auto _ : state) {
    auto conf = query::ConfidenceExact(instance->mu, instance->t,
                                       instance->answer, &stats);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["vars"] = 2.0 * size;
  state.counters["dp_width"] = static_cast<double>(stats.max_layer_width);
}
BENCHMARK(BM_ExactConfidenceHardFamily)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("confidence_hardness");
  tms::PrintReproduction();
  tms::PrintMonteCarloAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
