// E5 — Table 2, row 2, column "general" / "no order (PSPACE)": unranked
// enumeration runs with polynomial delay and polynomial space
// (Theorem 4.1). The reproduction table measures the worst per-answer
// delay (in emptiness-oracle calls and wall time) as n grows: the paper
// predicts it stays polynomial — in particular, the PER-ANSWER cost must
// not grow with the (exponential) number of answers already emitted.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "query/unranked_enum.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

void PrintReproduction() {
  bench::PrintHeader(
      "E5: unranked enumeration (Theorem 4.1)",
      "polynomial delay + polynomial space. Expected shape: the maximum "
      "per-answer oracle-call count grows polynomially with n and is flat "
      "in the number of answers already emitted.");

  std::printf("%-6s %-10s %-16s %-16s %-14s\n", "n", "answers",
              "max delay", "mean delay", "max delay");
  std::printf("%-6s %-10s %-16s %-16s %-14s\n", "", "(first 200)",
              "(oracle calls)", "(oracle calls)", "(ms)");
  for (int n : {8, 16, 32, 64, 128}) {
    Instance inst = MakeInstance(n, 31);
    query::UnrankedEnumerator it(inst.mu, inst.t);
    int64_t prev_calls = 0;
    int64_t max_delay_calls = 0;
    double max_delay_ms = 0;
    int64_t total_calls = 0;
    int count = 0;
    Stopwatch watch;
    while (count < 200) {
      watch.Restart();
      auto answer = it.Next();
      double ms = watch.ElapsedSeconds() * 1e3;
      if (!answer.has_value()) break;
      ++count;
      max_delay_calls =
          std::max(max_delay_calls, it.oracle_calls() - prev_calls);
      total_calls = it.oracle_calls();
      prev_calls = it.oracle_calls();
      max_delay_ms = std::max(max_delay_ms, ms);
    }
    std::printf("%-6d %-10d %-16lld %-16.1f %-14.3f\n", n, count,
                static_cast<long long>(max_delay_calls),
                count > 0 ? static_cast<double>(total_calls) / count : 0.0,
                max_delay_ms);
    std::string prefix = "n=" + std::to_string(n) + ".";
    bench::Report::Global().AddMetric(prefix + "answers", count);
    bench::Report::Global().AddMetric(prefix + "max_delay_oracle_calls",
                                      static_cast<double>(max_delay_calls));
    bench::Report::Global().AddMetric(
        prefix + "mean_delay_oracle_calls",
        count > 0 ? static_cast<double>(total_calls) / count : 0.0);
    bench::Report::Global().AddMetric(prefix + "max_delay_ms", max_delay_ms);
  }
}

void BM_UnrankedFirst50(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 37);
  for (auto _ : state) {
    query::UnrankedEnumerator it(inst.mu, inst.t);
    int count = 0;
    while (count < 50 && it.Next().has_value()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UnrankedFirst50)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("enumeration_unranked");
  tms::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
