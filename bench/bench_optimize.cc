// Offline query-automaton optimization (docs/OPTIMIZE.md) — the bench
// behind the "optimization is a pure performance knob" claim. Two
// experiments:
//
//   OPT1  the offline pass itself: prune + bisimulation-quotient
//         reductions (states/edges before and after, pass wall time) on
//         random nondeterministic transducers.
//   OPT2  the E12 E_max workload end to end, --optimize=off vs on: the
//         composed-product state count and the compose-phase time must
//         DROP while the emitted answer stream stays byte-identical.
//
// BENCH_optimize.json is the machine-readable baseline
// (bench/baselines/); a zero "identical" metric fails the binary, so a
// stream diff can never be checked in as a baseline.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "obs/query_scope.h"
#include "optimize/level.h"
#include "optimize/transducer_opt.h"
#include "query/emax_enum.h"
#include "ranking/answer_stream.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

// The E12 instance family of bench_enumeration_delay.cc: dense 3-node
// Markov sequences and a small deterministic transducer, the workload the
// acceptance bar for the optimization pass is stated against.
Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

int64_t CounterOr0(const obs::RegistrySnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

int64_t HistSumOr0(const obs::RegistrySnapshot& s, const std::string& name) {
  auto it = s.histograms.find(name);
  return it == s.histograms.end() ? 0 : it->second.sum;
}

// OPT1 — the offline pass in isolation. Nondeterministic random
// transducers with a sub-1 accept probability carry dead and duplicated
// states, so both tiers of the pass (stream-byte-exact prune, then the
// quotient reserved for offline artifacts) have real work to do.
void PrintOfflinePass() {
  bench::PrintHeader(
      "OPT1: offline pass reductions (prune + bisimulation quotient)",
      "the near-linear offline pass removes unreachable/dead states and "
      "merges bisimilar ones; states_after <= states_before always, with "
      "substantial reductions on nondeterministic machines.");

  std::printf("%-8s %-8s %-10s %-10s %-10s %-10s %-10s\n", "states", "trial",
              "st_before", "st_prune", "st_min", "edges_out", "pass_ms");
  for (int num_states : {8, 16, 32}) {
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(1000 + static_cast<uint64_t>(100 * num_states + trial));
      markov::MarkovSequence mu = workload::RandomMarkovSequence(3, 12, 2, rng);
      workload::RandomTransducerOptions opts;
      opts.num_states = num_states;
      opts.deterministic = false;
      opts.density = 0.5;
      opts.max_emission = 1;
      opts.output_symbols = 2;
      opts.accept_prob = 0.3;
      transducer::Transducer t =
          workload::RandomTransducer(mu.nodes(), opts, rng);

      optimize::OptimizeStats prune_stats;
      transducer::Transducer pruned = optimize::PruneTransducer(t, &prune_stats);
      optimize::OptimizeStats min_stats;
      Stopwatch sw;
      transducer::Transducer minimized =
          optimize::MinimizeTransducer(t, &min_stats);
      double pass_ms = sw.ElapsedSeconds() * 1e3;

      std::printf("%-8d %-8d %-10d %-10d %-10d %-10d %-10.3f\n", num_states,
                  trial, min_stats.states_before, prune_stats.states_after,
                  min_stats.states_after, min_stats.edges_after, pass_ms);
      std::string prefix = "states=" + std::to_string(num_states) +
                           ".trial=" + std::to_string(trial) + ".";
      bench::Report::Global().AddMetric(prefix + "states_before",
                                        min_stats.states_before);
      bench::Report::Global().AddMetric(prefix + "states_after_prune",
                                        prune_stats.states_after);
      bench::Report::Global().AddMetric(prefix + "states_after_minimize",
                                        min_stats.states_after);
      bench::Report::Global().AddMetric(prefix + "edges_before",
                                        min_stats.edges_before);
      bench::Report::Global().AddMetric(prefix + "edges_after",
                                        min_stats.edges_after);
      bench::Report::Global().AddMetric(prefix + "pass_ms", pass_ms);
    }
  }
}

struct E12Run {
  std::vector<ranking::ScoredAnswer> answers;
  double wall_ms = 0.0;
  int64_t composed_states = 0;  ///< sum over all subspace composes
  int64_t compose_ns = 0;       ///< compose-phase time, prune included
  int64_t optimize_ns = 0;      ///< offline-pass time (on-path only)
  int64_t states_pruned = 0;    ///< optimize.product_states_pruned
};

// One measured repetition: a fresh enumerator (and thus a fresh private
// composition cache, so every repetition redoes the compose work).
E12Run RunE12Once(const Instance& inst, optimize::Level level, int n, int k) {
  E12Run run;
  obs::QueryScope scope("bench_optimize." + std::string(LevelName(level)) +
                        ".n=" + std::to_string(n));
  exec::EngineOptions options;
  options.optimize = level;
  query::EmaxEnumerator it(inst.mu, inst.t, options);
  Stopwatch wall;
  while (static_cast<int>(run.answers.size()) < k) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    run.answers.push_back(std::move(*answer));
  }
  run.wall_ms = wall.ElapsedSeconds() * 1e3;
  obs::RegistrySnapshot snap = scope.Snapshot();
  run.composed_states = HistSumOr0(snap, "query.emax_enum.composed_states");
  run.compose_ns = HistSumOr0(snap, "query.emax_enum.compose_ns");
  run.optimize_ns = HistSumOr0(snap, "optimize.optimize_ns");
  run.states_pruned = CounterOr0(snap, "optimize.product_states_pruned");
  return run;
}

// Best-of-`reps` on the timing metrics (minimum over repetitions, the
// usual scheduler-noise suppressor); the count metrics and the answer
// stream are deterministic across repetitions, so the first repetition's
// values stand for all of them.
E12Run RunE12(const Instance& inst, optimize::Level level, int n, int k) {
  constexpr int kReps = 15;
  E12Run best = RunE12Once(inst, level, n, k);
  for (int rep = 1; rep < kReps; ++rep) {
    E12Run r = RunE12Once(inst, level, n, k);
    best.wall_ms = std::min(best.wall_ms, r.wall_ms);
    best.compose_ns = std::min(best.compose_ns, r.compose_ns);
    best.optimize_ns = std::min(best.optimize_ns, r.optimize_ns);
  }
  return best;
}

// OPT2 — the acceptance workload. Per instance size, the same top-k
// E_max enumeration is driven with the optimization knob off and on; the
// JSON records both sides plus the reduction, and the streams are
// byte-compared (output AND bitwise score). Returns false on any diff.
bool PrintE12Comparison() {
  bench::PrintHeader(
      "OPT2: E12 E_max workload, --optimize=off vs on",
      "pruning the composed products shrinks every per-subspace solve: "
      "the summed composed-product state count and the compose-phase time "
      "drop while the answer stream stays byte-identical.");

  bool all_identical = true;
  std::printf("%-6s %-12s %-12s %-12s %-12s %-10s %-10s\n", "n",
              "states_off", "states_on", "compose_off", "compose_on",
              "pruned", "identical");
  for (int n : {16, 32, 48}) {
    const int k = 100;
    Instance inst = MakeInstance(n, 211);
    E12Run off = RunE12(inst, optimize::Level::kOff, n, k);
    E12Run on = RunE12(inst, optimize::Level::kOn, n, k);

    bool identical = off.answers.size() == on.answers.size();
    for (size_t i = 0; identical && i < off.answers.size(); ++i) {
      identical = off.answers[i].output == on.answers[i].output &&
                  off.answers[i].score == on.answers[i].score;
    }
    all_identical = all_identical && identical;

    std::printf("%-6d %-12lld %-12lld %-12.3f %-12.3f %-10lld %-10s\n", n,
                static_cast<long long>(off.composed_states),
                static_cast<long long>(on.composed_states),
                static_cast<double>(off.compose_ns) * 1e-6,
                static_cast<double>(on.compose_ns) * 1e-6,
                static_cast<long long>(on.states_pruned),
                identical ? "yes" : "NO");

    std::string prefix = "e12.n=" + std::to_string(n) + ".";
    bench::Report::Global().AddMetric(prefix + "answers",
                                      static_cast<double>(off.answers.size()));
    bench::Report::Global().AddMetric(prefix + "composed_states_off",
                                      static_cast<double>(off.composed_states));
    bench::Report::Global().AddMetric(prefix + "composed_states_on",
                                      static_cast<double>(on.composed_states));
    bench::Report::Global().AddMetric(
        prefix + "composed_states_reduction",
        static_cast<double>(off.composed_states - on.composed_states));
    bench::Report::Global().AddMetric(prefix + "compose_ns_off",
                                      static_cast<double>(off.compose_ns));
    bench::Report::Global().AddMetric(prefix + "compose_ns_on",
                                      static_cast<double>(on.compose_ns));
    bench::Report::Global().AddMetric(
        prefix + "compose_ns_reduction",
        static_cast<double>(off.compose_ns - on.compose_ns));
    bench::Report::Global().AddMetric(prefix + "optimize_ns_on",
                                      static_cast<double>(on.optimize_ns));
    bench::Report::Global().AddMetric(prefix + "product_states_pruned",
                                      static_cast<double>(on.states_pruned));
    bench::Report::Global().AddMetric(prefix + "wall_ms_off", off.wall_ms);
    bench::Report::Global().AddMetric(prefix + "wall_ms_on", on.wall_ms);
    bench::Report::Global().AddMetric(prefix + "identical",
                                      identical ? 1.0 : 0.0);
    if (!identical) {
      bench::Report::Global().AddSkip(
          "OPT2: optimized stream diverged from the unoptimized one at n=" +
          std::to_string(n));
    }
  }
  return all_identical;
}

}  // namespace
}  // namespace tms

// Like bench_enumeration_delay this registers no google-benchmark cases:
// the off-vs-on comparison above is the whole measurement, and the
// byte-identity check is an asserted contract — a stream diff fails the
// binary so it can never become a checked-in baseline.
int main() {
  tms::bench::Session session("optimize");
  tms::PrintOfflinePass();
  bool identical = tms::PrintE12Comparison();
  return identical ? 0 : 1;
}
