// Shared helpers for the benchmark harness.
//
// Besides the human-readable reproduction tables, every bench binary
// opens a `bench::Session` in main(); the session funnels each
// experiment's header, its recorded metrics, and the final observability
// registry (counters + delay histograms from the instrumented engines,
// see src/obs/) into `BENCH_<name>.json`, written to the current
// directory or $TMS_BENCH_JSON_DIR. These files are the machine-readable
// record that the paper's polynomial-delay claims hold run over run
// (bench/baselines/ keeps the first checked-in baselines).

#ifndef TMS_BENCH_BENCH_UTIL_H_
#define TMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "markov/markov_sequence.h"
#include "markov/world_iter.h"
#include "obs/obs.h"
#include "transducer/transducer.h"

namespace tms::bench {

/// Collects the machine-readable side of a bench run. One global instance
/// per binary; Session (below) names it and writes the JSON at exit.
class Report {
 public:
  static Report& Global() {
    static Report* r = new Report();
    return *r;
  }

  void SetName(std::string name) { name_ = std::move(name); }

  /// Starts a new experiment section; subsequent AddMetric calls attach
  /// to it. PrintHeader calls this automatically.
  void BeginExperiment(std::string experiment, std::string claim) {
    experiments_.push_back({std::move(experiment), std::move(claim), {}});
  }

  /// Records one scalar (e.g. "n=16.max_delay_ms") under the current
  /// experiment (or a synthetic one when none is open).
  void AddMetric(std::string key, double value) {
    if (experiments_.empty()) BeginExperiment("(unnamed)", "");
    experiments_.back().metrics.emplace_back(std::move(key), value);
  }

  /// Records a skipped case (e.g. SampleAnswer found no accepting run).
  void AddSkip(std::string context) { skips_.push_back(std::move(context)); }

  size_t skip_count() const { return skips_.size(); }

  /// Writes BENCH_<name>.json; returns the path ("" on failure).
  std::string WriteJson() const {
    if (name_.empty()) return "";
    std::string dir = ".";
    if (const char* env = std::getenv("TMS_BENCH_JSON_DIR")) dir = env;
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::string doc = "{\"bench\":\"";
    obs::AppendJsonEscaped(name_, &doc);
    doc += "\",\"experiments\":[";
    bool first_exp = true;
    for (const Experiment& exp : experiments_) {
      if (!first_exp) doc += ',';
      first_exp = false;
      doc += "{\"name\":\"";
      obs::AppendJsonEscaped(exp.name, &doc);
      doc += "\",\"claim\":\"";
      obs::AppendJsonEscaped(exp.claim, &doc);
      doc += "\",\"metrics\":{";
      bool first_metric = true;
      for (const auto& [key, value] : exp.metrics) {
        if (!first_metric) doc += ',';
        first_metric = false;
        doc += '"';
        obs::AppendJsonEscaped(key, &doc);
        doc += "\":";
        obs::AppendJsonNumber(value, &doc);
      }
      doc += "}}";
    }
    doc += "],\"skips\":[";
    bool first_skip = true;
    for (const std::string& skip : skips_) {
      if (!first_skip) doc += ',';
      first_skip = false;
      doc += '"';
      obs::AppendJsonEscaped(skip, &doc);
      doc += '"';
    }
    doc += "],\"metrics\":";
    doc += obs::RegistryJson(obs::Registry::Global().Snapshot());
    doc += "}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fputs(doc.c_str(), f);
    std::fclose(f);
    return path;
  }

 private:
  struct Experiment {
    std::string name;
    std::string claim;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string name_;
  std::vector<Experiment> experiments_;
  std::vector<std::string> skips_;
};

/// RAII bench session: enables metric collection, names the report, and
/// writes BENCH_<name>.json when main() returns.
class Session {
 public:
  explicit Session(const char* name) {
    obs::SetEnabled(true);
    Report::Global().SetName(name);
  }
  ~Session() {
    std::string path = Report::Global().WriteJson();
    if (!path.empty()) {
      std::fprintf(stderr, "\nwrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr,
                   "\nWARNING: failed to write bench JSON report "
                   "(check TMS_BENCH_JSON_DIR)\n");
    }
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

/// The output of one (uniformly random) accepting run of `t` on `world`,
/// or nullopt if no accepting run exists. Used to draw realistic answers
/// for confidence benchmarks without enumerating all outputs.
inline std::optional<Str> RandomRunOutput(const transducer::Transducer& t,
                                          const Str& world, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    automata::StateId q = t.initial();
    Str out;
    bool stuck = false;
    for (Symbol s : world) {
      const auto& edges = t.Next(q, s);
      if (edges.empty()) {
        stuck = true;
        break;
      }
      const transducer::Edge& e =
          edges[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(edges.size()) - 1))];
      out.insert(out.end(), e.output.begin(), e.output.end());
      q = e.target;
    }
    if (!stuck && t.IsAccepting(q)) return out;
  }
  return std::nullopt;
}

/// Samples a world and returns the output of one of its accepting runs
/// (retrying until one exists); an answer with nonzero confidence.
/// A nullopt return (no accepting run in 256 sampled worlds) is loud:
/// it is logged to stderr, counted in the bench JSON's "skips" list, and
/// counted by the `bench.sample_answer.skips` metric — benchmarks must
/// not silently drop cases.
inline std::optional<Str> SampleAnswer(const markov::MarkovSequence& mu,
                                       const transducer::Transducer& t,
                                       Rng& rng) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    Str world = markov::SampleWorld(mu, rng);
    auto out = RandomRunOutput(t, world, rng);
    if (out.has_value()) return out;
  }
  std::string context =
      "SampleAnswer: no accepting run in 256 sampled worlds (n=" +
      std::to_string(mu.length()) +
      ", |Q|=" + std::to_string(t.num_states()) + "); case skipped";
  std::fprintf(stderr, "WARNING: %s\n", context.c_str());
  Report::Global().AddSkip(context);
  TMS_OBS_COUNT("bench.sample_answer.skips", 1);
  return std::nullopt;
}

/// Prints a section header for the reproduction tables and opens the
/// matching experiment section in the bench JSON report.
inline void PrintHeader(const char* experiment, const char* claim) {
  Report::Global().BeginExperiment(experiment, claim);
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace tms::bench

#endif  // TMS_BENCH_BENCH_UTIL_H_
