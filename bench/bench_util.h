// Shared helpers for the benchmark harness.

#ifndef TMS_BENCH_BENCH_UTIL_H_
#define TMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <optional>

#include "common/rng.h"
#include "markov/markov_sequence.h"
#include "markov/world_iter.h"
#include "transducer/transducer.h"

namespace tms::bench {

/// The output of one (uniformly random) accepting run of `t` on `world`,
/// or nullopt if no accepting run exists. Used to draw realistic answers
/// for confidence benchmarks without enumerating all outputs.
inline std::optional<Str> RandomRunOutput(const transducer::Transducer& t,
                                          const Str& world, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    automata::StateId q = t.initial();
    Str out;
    bool stuck = false;
    for (Symbol s : world) {
      const auto& edges = t.Next(q, s);
      if (edges.empty()) {
        stuck = true;
        break;
      }
      const transducer::Edge& e =
          edges[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(edges.size()) - 1))];
      out.insert(out.end(), e.output.begin(), e.output.end());
      q = e.target;
    }
    if (!stuck && t.IsAccepting(q)) return out;
  }
  return std::nullopt;
}

/// Samples a world and returns the output of one of its accepting runs
/// (retrying until one exists); an answer with nonzero confidence.
inline std::optional<Str> SampleAnswer(const markov::MarkovSequence& mu,
                                       const transducer::Transducer& t,
                                       Rng& rng) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    Str world = markov::SampleWorld(mu, rng);
    auto out = RandomRunOutput(t, world, rng);
    if (out.has_value()) return out;
  }
  return std::nullopt;
}

/// Prints a section header for the reproduction tables.
inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace tms::bench

#endif  // TMS_BENCH_BENCH_UTIL_H_
