// E7 — Table 2, row 3: approximating the top answer within any
// sub-exponential factor 2^{n^{1-δ}} is NP-hard, already for one-state
// Mealy machines (Theorem 4.4) and for a fixed deterministic projector
// with |Σ|=4, |Q|=1 (Theorem 4.5). The reproduction table runs both
// reduction devices and measures the gap between the (tractable)
// E_max-top answer's confidence and the true confidence optimum as the
// amplification factor grows — the paper predicts exponential growth.

#include <benchmark/benchmark.h>

#include <cmath>

#include <string>

#include "bench_util.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "query/top_confidence.h"
#include "reductions/max3dnf.h"

namespace tms {
namespace {

void PrintReproduction() {
  bench::PrintHeader(
      "E7: hardness of the top answer (Theorems 4.4 / 4.5)",
      "E_max is a |Σ|^n-approximation and nothing sub-exponential is "
      "tractable. Expected shape: gap = (OPT / sat(E_max-top))^copies — "
      "exponential in the amplification.");

  Rng rng(67);
  reductions::Dnf3Formula f = reductions::Dnf3Formula::Random(6, 5, rng);
  const int opt = f.BruteForceOptimum();
  std::printf("formula: %d vars, %zu clauses, OPT = %d\n\n", f.num_vars,
              f.clauses.size(), opt);
  std::printf("%-10s %-8s %-6s %-14s %-14s %-10s\n", "device", "copies", "n",
              "conf(E_max top)", "conf(optimum)", "gap");
  for (bool projector : {false, true}) {
    for (int copies : {1, 2, 3, 4}) {
      auto instance = projector
                          ? reductions::Max3DnfToProjector(f, copies)
                          : reductions::Max3DnfToMealy(f, copies);
      if (!instance.ok()) continue;
      auto top = query::TopAnswerByEmax(instance->mu, instance->t);
      auto conf = query::Confidence(instance->mu, instance->t, top->output);
      double best = std::pow(opt * instance->base_mass, copies);
      std::printf("%-10s %-8d %-6d %-14.3e %-14.3e %-10.2f\n",
                  projector ? "projector" : "Mealy", copies,
                  instance->mu.length(), *conf, best, best / *conf);
    }
  }
}

// Ablation: the branch-and-bound EXACT top-confidence search
// (query/top_confidence.h). On this adversarial family the certificate
// cannot fire early (that is the content of the theorem), so exploration
// grows with the answer space; the budgeted run shows the anytime
// behavior.
void PrintExactSearchAblation() {
  std::printf(
      "\nAblation — branch-and-bound exact top-confidence search:\n");
  std::printf("%-8s %-14s %-12s %-12s %-12s\n", "copies", "budget",
              "explored", "conf found", "certified");
  Rng rng(73);
  reductions::Dnf3Formula f = reductions::Dnf3Formula::Random(5, 4, rng);
  const int opt = f.BruteForceOptimum();
  for (int copies : {1, 2}) {
    auto instance = reductions::Max3DnfToProjector(f, copies);
    for (int64_t budget : {8LL, 64LL, 0LL}) {
      auto result = query::TopAnswerByConfidence(instance->mu, instance->t,
                                                 budget);
      if (!result.ok()) continue;
      std::printf("%-8d %-14s %-12lld %-12.3e %-12s\n", copies,
                  budget == 0 ? "unlimited" : std::to_string(budget).c_str(),
                  static_cast<long long>(result->answers_explored),
                  result->confidence,
                  result->certified_optimal ? "yes" : "no");
    }
    double best = std::pow(opt * instance->base_mass, copies);
    std::printf("         (analytic optimum: %.3e)\n", best);
  }
}

void BM_EmaxTopOnHardInstance(benchmark::State& state) {
  Rng rng(71);
  reductions::Dnf3Formula f = reductions::Dnf3Formula::Random(8, 6, rng);
  auto instance =
      reductions::Max3DnfToProjector(f, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto top = query::TopAnswerByEmax(instance->mu, instance->t);
    benchmark::DoNotOptimize(top);
  }
  state.counters["n"] = static_cast<double>(instance->mu.length());
}
BENCHMARK(BM_EmaxTopOnHardInstance)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("hardness_top_answer");
  tms::PrintReproduction();
  tms::PrintExactSearchAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
