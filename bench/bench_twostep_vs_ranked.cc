// E10 — the paper's motivation (§1, §3.2): the classic two-step evaluation
// ("enumerate ALL answers, then compute each confidence") is impractical
// because |A^ω(μ)| can be exponential in n, while users want a few
// top-ranked answers. The reproduction table pits the two-step baseline
// against ranked top-k evaluation as n grows: the two-step cost explodes
// with the answer count; top-k stays polynomial.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "query/evaluator.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  // Denser support → more answers, the regime the paper warns about.
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

void PrintReproduction() {
  bench::PrintHeader(
      "E10: two-step evaluation vs ranked top-k (paper §1, §3.2)",
      "the answer set grows exponentially with n, so producing all answers "
      "before ranking is impractical; ranked enumeration makes top-k "
      "affordable. Expected shape: two-step time tracks the answer count; "
      "top-10 time grows polynomially in n only.");

  std::printf("%-6s %-12s %-18s %-16s\n", "n", "answers",
              "two-step (ms)", "top-10 (ms)");
  for (int n : {6, 8, 10, 12, 14, 16}) {
    Instance inst = MakeInstance(n, 131);
    auto eval = query::Evaluator::Create(&inst.mu, &inst.t);

    Stopwatch two_step;
    auto all = eval->EvaluateTwoStep(/*with_confidence=*/true);
    double two_step_ms = two_step.ElapsedSeconds() * 1e3;

    Stopwatch ranked;
    auto topk = eval->TopK(10, /*with_confidence=*/true);
    double ranked_ms = ranked.ElapsedSeconds() * 1e3;

    std::printf("%-6d %-12zu %-18.2f %-16.2f\n", n, all->size(),
                two_step_ms, ranked_ms);
    std::string prefix = "n=" + std::to_string(n) + ".";
    bench::Report::Global().AddMetric(prefix + "answers",
                                      static_cast<double>(all->size()));
    bench::Report::Global().AddMetric(prefix + "twostep_ms", two_step_ms);
    bench::Report::Global().AddMetric(prefix + "top10_ms", ranked_ms);
  }
}

// The Lahar framing: one query over a whole collection of Markov
// sequences. db::BatchEvaluator fans the per-sequence top-k evaluations
// across a thread pool and shares one composition cache (the composed
// transducers depend only on the constraint, not on μ), so the sequential
// collection scan is both the correctness reference and the 1-thread row.
void PrintBatchReproduction() {
  bench::PrintHeader(
      "E10b: one query over a sequence collection (db::BatchEvaluator)",
      "per-sequence evaluations are independent and share all composition "
      "work through one cache; the batched evaluator returns rows "
      "byte-identical to the sequential collection scan at every thread "
      "count.");

  constexpr int kSequences = 12;
  constexpr int kN = 12;
  constexpr int kTopK = 5;
  Rng rng(151);
  markov::MarkovSequence seed = workload::RandomMarkovSequence(3, kN, 3, rng);
  db::SequenceCollection collection(seed.nodes());
  for (int i = 0; i < kSequences; ++i) {
    Status st = collection.Insert(
        "seq-" + std::to_string(i),
        i == 0 ? seed : workload::RandomMarkovSequence(3, kN, 3, rng));
    if (!st.ok()) {
      bench::Report::Global().AddSkip("E10b: insert failed: " + st.message());
      return;
    }
  }
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t =
      workload::RandomTransducer(collection.nodes(), opts, rng);

  Stopwatch sequential;
  auto want = collection.TopKPerSequence(t, kTopK);
  double sequential_ms = sequential.ElapsedSeconds() * 1e3;
  if (!want.ok()) {
    bench::Report::Global().AddSkip("E10b: sequential scan failed: " +
                                    want.status().message());
    return;
  }
  std::printf("%-10s %-8s %-8s %-12s %-10s %-10s\n", "mode", "threads",
              "rows", "total (ms)", "identical", "cache hits");
  std::printf("%-10s %-8d %-8zu %-12.2f %-10s %-10s\n", "collection", 1,
              want->size(), sequential_ms, "(ref)", "-");
  bench::Report::Global().AddMetric("batch.sequential_ms", sequential_ms);

  for (int threads : {1, 2, 4}) {
    auto batch = db::BatchEvaluator::Create(
        &collection, &t, db::BatchEvaluator::Options{threads});
    if (!batch.ok()) {
      bench::Report::Global().AddSkip("E10b: Create failed: " +
                                      batch.status().message());
      continue;
    }
    Stopwatch wall;
    auto got = batch->TopKPerSequence(kTopK);
    double total_ms = wall.ElapsedSeconds() * 1e3;
    if (!got.ok()) {
      bench::Report::Global().AddSkip("E10b: batch scan failed: " +
                                      got.status().message());
      continue;
    }
    bool identical = got->size() == want->size();
    for (size_t i = 0; identical && i < got->size(); ++i) {
      identical = (*got)[i].key == (*want)[i].key &&
                  (*got)[i].answer.output == (*want)[i].answer.output &&
                  (*got)[i].answer.emax == (*want)[i].answer.emax &&
                  (*got)[i].answer.confidence == (*want)[i].answer.confidence;
    }
    auto stats = batch->cache_stats();
    std::printf("%-10s %-8d %-8zu %-12.2f %-10s %-10lld\n", "batch", threads,
                got->size(), total_ms, identical ? "yes" : "NO",
                static_cast<long long>(stats.hits));
    std::string prefix = "batch.threads=" + std::to_string(threads) + ".";
    bench::Report::Global().AddMetric(prefix + "total_ms", total_ms);
    bench::Report::Global().AddMetric(prefix + "rows",
                                      static_cast<double>(got->size()));
    bench::Report::Global().AddMetric(prefix + "identical",
                                      identical ? 1.0 : 0.0);
    bench::Report::Global().AddMetric(prefix + "cache_hits",
                                      static_cast<double>(stats.hits));
    if (!identical) {
      bench::Report::Global().AddSkip(
          "E10b: batch rows diverged from the sequential scan at threads=" +
          std::to_string(threads));
    }
  }
}

void BM_TwoStep(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 137);
  auto eval = query::Evaluator::Create(&inst.mu, &inst.t);
  for (auto _ : state) {
    auto all = eval->EvaluateTwoStep();
    benchmark::DoNotOptimize(all);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TwoStep)->Arg(6)->Arg(10)->Arg(14);

void BM_RankedTop10(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 137);
  auto eval = query::Evaluator::Create(&inst.mu, &inst.t);
  for (auto _ : state) {
    auto topk = eval->TopK(10);
    benchmark::DoNotOptimize(topk);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankedTop10)->Arg(6)->Arg(10)->Arg(14)->Arg(32)->Arg(64);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("twostep_vs_ranked");
  tms::PrintReproduction();
  tms::PrintBatchReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
