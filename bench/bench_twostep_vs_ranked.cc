// E10 — the paper's motivation (§1, §3.2): the classic two-step evaluation
// ("enumerate ALL answers, then compute each confidence") is impractical
// because |A^ω(μ)| can be exponential in n, while users want a few
// top-ranked answers. The reproduction table pits the two-step baseline
// against ranked top-k evaluation as n grows: the two-step cost explodes
// with the answer count; top-k stays polynomial.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "query/evaluator.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  // Denser support → more answers, the regime the paper warns about.
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

void PrintReproduction() {
  bench::PrintHeader(
      "E10: two-step evaluation vs ranked top-k (paper §1, §3.2)",
      "the answer set grows exponentially with n, so producing all answers "
      "before ranking is impractical; ranked enumeration makes top-k "
      "affordable. Expected shape: two-step time tracks the answer count; "
      "top-10 time grows polynomially in n only.");

  std::printf("%-6s %-12s %-18s %-16s\n", "n", "answers",
              "two-step (ms)", "top-10 (ms)");
  for (int n : {6, 8, 10, 12, 14, 16}) {
    Instance inst = MakeInstance(n, 131);
    auto eval = query::Evaluator::Create(&inst.mu, &inst.t);

    Stopwatch two_step;
    auto all = eval->EvaluateTwoStep(/*with_confidence=*/true);
    double two_step_ms = two_step.ElapsedSeconds() * 1e3;

    Stopwatch ranked;
    auto topk = eval->TopK(10, /*with_confidence=*/true);
    double ranked_ms = ranked.ElapsedSeconds() * 1e3;

    std::printf("%-6d %-12zu %-18.2f %-16.2f\n", n, all->size(),
                two_step_ms, ranked_ms);
    std::string prefix = "n=" + std::to_string(n) + ".";
    bench::Report::Global().AddMetric(prefix + "answers",
                                      static_cast<double>(all->size()));
    bench::Report::Global().AddMetric(prefix + "twostep_ms", two_step_ms);
    bench::Report::Global().AddMetric(prefix + "top10_ms", ranked_ms);
  }
}

void BM_TwoStep(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 137);
  auto eval = query::Evaluator::Create(&inst.mu, &inst.t);
  for (auto _ : state) {
    auto all = eval->EvaluateTwoStep();
    benchmark::DoNotOptimize(all);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TwoStep)->Arg(6)->Arg(10)->Arg(14);

void BM_RankedTop10(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 137);
  auto eval = query::Evaluator::Create(&inst.mu, &inst.t);
  for (auto _ : state) {
    auto topk = eval->TopK(10);
    benchmark::DoNotOptimize(topk);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankedTop10)->Arg(6)->Arg(10)->Arg(14)->Arg(32)->Arg(64);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("twostep_vs_ranked");
  tms::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
