// E11 — Theorem 5.3: approximating the top s-projector answer within
// n^{1/2-δ} is hard (via maximum independent set), so the n-approximation
// of Theorem 5.2 cannot be improved to a constant or logarithmic factor.
// The reproduction table runs the independent-set family: the chain's
// #-free runs spell increasing, consecutively-nonadjacent vertex
// sequences, and the tractable I_max-top answer is compared against the
// true confidence optimum (brute-forced) — the realized gap is the
// quantity the theorem says cannot be bounded well.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <set>

#include "bench_util.h"
#include "markov/world_iter.h"
#include "projector/imax_enum.h"
#include "projector/indexed_confidence.h"
#include "reductions/independent_set.h"

namespace tms {
namespace {

std::map<Str, double> BruteConf(const markov::MarkovSequence& mu,
                                const projector::SProjector& p) {
  std::map<Str, double> conf;
  const int n = mu.length();
  markov::ForEachWorld(mu, [&](const Str& world, double mass) {
    std::set<Str> outputs;
    for (int i = 1; i <= n + 1; ++i) {
      for (int len = 0; i + len - 1 <= n; ++len) {
        if (len > 0 && i > n) break;
        Str o(world.begin() + (i - 1), world.begin() + (i - 1 + len));
        if (p.MatchesIndexed(world, projector::IndexedAnswer{o, i})) {
          outputs.insert(o);
        }
      }
    }
    for (const Str& o : outputs) conf[o] += mass;
  });
  return conf;
}

void PrintReproduction() {
  bench::PrintHeader(
      "E11: s-projector top-answer hardness family (Theorem 5.3)",
      "top answer n^{1/2-δ}-inapproximable via independent set; the "
      "tractable I_max-top answer can fall a growing factor short of the "
      "confidence optimum. Expected shape: gap ≥ 1, growing with instance "
      "size, bounded by n (Prop. 5.9).");

  std::printf("%-8s %-6s %-6s %-6s %-12s %-12s %-8s %-14s\n", "seed", "V",
              "n", "MIS", "conf(opt)", "conf(I_max)", "gap",
              "order-transitive");
  Rng seeds(139);
  for (int trial = 0; trial < 6; ++trial) {
    const int v = 6;
    const int n = 8;
    Rng rng(static_cast<uint64_t>(1000 + trial));
    reductions::Graph g = reductions::Graph::Random(v, 0.35, rng);
    auto instance = reductions::IndependentSetToSProjector(g, n, 0.4);
    if (!instance.ok()) continue;

    auto conf = BruteConf(instance->mu, instance->p);
    double best_conf = 0;
    for (const auto& [o, c] : conf) best_conf = std::max(best_conf, c);

    auto it = projector::ImaxEnumerator::Create(&instance->mu, &instance->p);
    auto top = it->Next();
    double top_conf = top.has_value() ? conf.at(top->output) : 0.0;

    std::printf("%-8d %-6d %-6d %-6d %-12.5f %-12.5f %-8.3f %s\n",
                1000 + trial, v, n, g.BruteForceMaxIndependentSet(),
                best_conf, top_conf,
                top_conf > 0 ? best_conf / top_conf : 0.0,
                g.IsOrderTransitive() ? "yes" : "no");
  }
}

// The mechanism behind Theorem 5.3's gap, isolated: one answer whose
// confidence is SPREAD over n occurrence positions (each individually
// weak) against one CONCENTRATED answer. I_max ranks the concentrated
// answer first although the spread answer's confidence is ~n/1.2 times
// larger — the realized approximation ratio grows linearly with n,
// approaching the Proposition 5.9 ceiling.
void PrintSpreadVsConcentratedTable() {
  std::printf(
      "\nAdversarial spread-vs-concentrated family (gap → Θ(n)):\n");
  std::printf("%-6s %-10s %-12s %-12s %-8s %-10s\n", "n", "I_max top",
              "conf(top)", "conf(opt)", "gap", "bound n+1");
  for (int n : {4, 8, 16, 32, 64}) {
    // Worlds: u_i = c^{i-1} a d^{n-i} (α/n each) and v = b d^{n-1} (β),
    // with β = 1.2·α/n so the concentrated "b" wins under I_max.
    const double beta = 1.2 / (n + 1.2);
    const double alpha = 1.0 - beta;
    Alphabet sigma = *Alphabet::FromNames({"a", "b", "c", "d"});
    std::vector<double> initial = {alpha / n, beta, alpha * (n - 1) / n,
                                   0.0};
    std::vector<std::vector<double>> transitions(
        static_cast<size_t>(n - 1));
    for (int i = 1; i < n; ++i) {
      std::vector<double> m(16, 0.0);
      m[0 * 4 + 3] = 1.0;  // a -> d
      m[1 * 4 + 3] = 1.0;  // b -> d
      m[3 * 4 + 3] = 1.0;  // d -> d
      m[2 * 4 + 0] = 1.0 / (n - i);                    // c -> a
      m[2 * 4 + 2] = static_cast<double>(n - i - 1) / (n - i);  // c -> c
      transitions[static_cast<size_t>(i - 1)] = std::move(m);
    }
    auto mu = markov::MarkovSequence::Create(sigma, std::move(initial),
                                             std::move(transitions));
    // Pattern: a single "a" or "b".
    automata::Dfa a(sigma, 3);
    a.SetInitial(0);
    for (Symbol s = 0; s < 4; ++s) {
      a.SetTransition(0, s, s <= 1 ? 1 : 2);
      a.SetTransition(1, s, 2);
      a.SetTransition(2, s, 2);
    }
    a.SetAccepting(1, true);
    auto p = projector::SProjector::Simple(std::move(a));

    auto it = projector::ImaxEnumerator::Create(&*mu, &*p);
    auto top = it->Next();
    auto conf = BruteConf(*mu, *p);
    double best = 0;
    for (const auto& [o, c] : conf) best = std::max(best, c);
    double top_conf = top.has_value() ? conf.at(top->output) : 0.0;
    std::printf("%-6d %-10s %-12.5f %-12.5f %-8.2f %d\n", n,
                top.has_value()
                    ? FormatStr(sigma, top->output).c_str()
                    : "-",
                top_conf, best, top_conf > 0 ? best / top_conf : 0.0,
                n + 1);
  }
}

void BM_ImaxTopOnIndependentSetFamily(benchmark::State& state) {
  Rng rng(149);
  reductions::Graph g =
      reductions::Graph::Random(static_cast<int>(state.range(0)), 0.3, rng);
  auto instance = reductions::IndependentSetToSProjector(
      g, static_cast<int>(state.range(1)), 0.4);
  for (auto _ : state) {
    auto it =
        projector::ImaxEnumerator::Create(&instance->mu, &instance->p);
    auto top = it->Next();
    benchmark::DoNotOptimize(top);
  }
  state.counters["V"] = static_cast<double>(state.range(0));
  state.counters["n"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_ImaxTopOnIndependentSetFamily)
    ->Args({8, 16})->Args({16, 32})->Args({32, 64});

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("sprojector_hardness");
  tms::PrintReproduction();
  tms::PrintSpreadVsConcentratedTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
