// E1 — reproduces Figure 1, Figure 2 and Table 1 of the paper, plus the
// derived quantities of Examples 3.2, 3.4 and 4.2, and times the core
// operations on the running example.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "workload/running_example.h"

namespace tms {
namespace {

void PrintReproduction() {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  const Alphabet& delta = fig2.output_alphabet();

  bench::PrintHeader(
      "E1: Table 1 — random strings and their output",
      "probabilities 0.3969/0.0049/0.002/0.0315/0.0252/0.007; outputs "
      "12/12/12/21λ/ε/N-A; conf(12)=0.4038 over the listed worlds; "
      "E_max(12)=0.3969");

  std::printf("%-4s %-24s %-12s %s\n", "", "value", "probability", "output");
  for (const workload::Table1Row& row : workload::Table1Rows()) {
    Str world = *ParseStr(mu.nodes(), row.world);
    auto output = fig2.TransduceDeterministic(world);
    std::printf("%-4s %-24s %-12.4f %s\n", row.name, row.world,
                mu.WorldProbability(world),
                output.has_value()
                    ? FormatStrCompact(delta, *output).c_str()
                    : "N/A");
  }

  Str twelve = *ParseStr(delta, "1 2");
  double listed = 0.3969 + 0.0049 + 0.002;
  auto conf = query::ConfidenceDeterministic(mu, fig2, twelve);
  auto emax = query::EmaxOfAnswer(mu, fig2, twelve);
  std::printf("\nconf(12) over the worlds the paper lists (s,t,u): %.4f "
              "(paper: 0.4038)\n", listed);
  std::printf("conf(12), full reconstruction (Theorem 4.6 DP) : %.4f "
              "(includes the forced 4th world r1b r1b la r1a r2a — see "
              "DESIGN.md)\n", *conf);
  std::printf("E_max(12) (Example 4.2)                         : %.4f "
              "(paper: 0.3969)\n", emax->prob);

  std::printf("\nAll answers by decreasing E_max (Theorem 4.3):\n");
  query::EmaxEnumerator it(mu, fig2);
  while (auto answer = it.Next()) {
    auto c = query::ConfidenceDeterministic(mu, fig2, answer->output);
    std::printf("  %-8s E_max=%.4f conf=%.4f\n",
                FormatStrCompact(delta, answer->output).c_str(),
                answer->score, *c);
  }
}

void BM_Table1Confidence(benchmark::State& state) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  Str twelve = *ParseStr(fig2.output_alphabet(), "1 2");
  for (auto _ : state) {
    auto conf = query::ConfidenceDeterministic(mu, fig2, twelve);
    benchmark::DoNotOptimize(conf);
  }
}
BENCHMARK(BM_Table1Confidence);

void BM_Table1TopAnswer(benchmark::State& state) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  for (auto _ : state) {
    auto top = query::TopAnswerByEmax(mu, fig2);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_Table1TopAnswer);

void BM_Table1FullEnumeration(benchmark::State& state) {
  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();
  for (auto _ : state) {
    auto answers = query::AllAnswers(mu, fig2);
    benchmark::DoNotOptimize(answers);
  }
}
BENCHMARK(BM_Table1FullEnumeration);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("table1_running_example");
  tms::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
