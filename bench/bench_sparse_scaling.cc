// Sparse-vs-dense kernel scaling on large alphabets.
//
// The paper's DP algorithms are polynomial in |Σ|, but the dense kernel
// layer pays the full σ² per step even when the transition matrices are a
// few percent nonzero — the regime real tag sets and HMM-derived models
// live in. This bench measures the E_max Viterbi forward (the Theorem 4.3
// hot path) at |Σ| ∈ {64, 256, 1024} × n ∈ {1024, 4096} with ~5%-dense
// homogeneous transition matrices, on each backend:
//
//   dense   — the kernels.h GemmTN layer step,
//   sparse  — the kernels/sparse.h SpGemm step over the CSR transpose,
//   auto    — the kernels::ChooseBackend policy (must pick sparse here).
//
// Answers (witness world, output, probability) must be bitwise identical
// across backends — the sparse layer skips only ⊕-identity entries in the
// dense reduction order. The headline figure is the sparse speedup at
// σ=1024 / n=4096, expected well above 5×: the sparse step does
// O(nnz·|Q|) work against the dense O(σ²·|Q|).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "kernels/backend.h"
#include "query/emax.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

// ~5% density: each row of the shared transition matrix has max(1, σ/20)
// nonzero entries. The transducer is small and deterministic — the bench
// isolates the μ-side kernels, not transducer composition.
Instance MakeInstance(int sigma, int n, uint64_t seed) {
  Rng rng(seed);
  const int support = std::max(1, sigma / 20);
  markov::MarkovSequence mu =
      workload::RandomHomogeneousMarkovSequence(sigma, n, support, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 2;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

// One timed TopAnswer on a fresh context of the given backend; the
// context build (log mapping + CSR copy) is inside the measurement — it
// is part of what a caller pays per model.
double TimedTopAnswerMs(const Instance& inst, kernels::BackendChoice backend,
                        std::optional<query::Evidence>* out) {
  Stopwatch watch;
  query::EmaxContext ctx(inst.mu, backend);
  *out = ctx.TopAnswer(inst.t);
  return watch.ElapsedSeconds() * 1e3;
}

bool SameEvidence(const std::optional<query::Evidence>& a,
                  const std::optional<query::Evidence>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->world == b->world && a->output == b->output && a->prob == b->prob;
}

void PrintScalingTable() {
  bench::PrintHeader(
      "Sparse kernel scaling: E_max Viterbi forward on ~5%-dense models",
      "same instance solved on the dense, sparse, and auto backends; the "
      "answers must be bitwise identical, only the time may differ.");

  std::printf("%-7s %-7s %-12s %-12s %-12s %-9s %-10s %-6s\n", "sigma", "n",
              "dense (ms)", "sparse (ms)", "auto (ms)", "speedup", "auto",
              "same?");
  for (int sigma : {64, 256, 1024}) {
    for (int n : {1024, 4096}) {
      Instance inst = MakeInstance(sigma, n, 97);
      std::optional<query::Evidence> dense_ev, sparse_ev, auto_ev;
      const double dense_ms =
          TimedTopAnswerMs(inst, kernels::BackendChoice::kDense, &dense_ev);
      const double sparse_ms =
          TimedTopAnswerMs(inst, kernels::BackendChoice::kSparse, &sparse_ev);
      const double auto_ms =
          TimedTopAnswerMs(inst, kernels::BackendChoice::kAuto, &auto_ev);
      query::EmaxContext probe(inst.mu, kernels::BackendChoice::kAuto);
      const char* auto_backend = kernels::BackendName(probe.backend());
      const bool same = SameEvidence(dense_ev, sparse_ev) &&
                        SameEvidence(dense_ev, auto_ev);
      const double speedup = sparse_ms > 0 ? dense_ms / sparse_ms : 0.0;
      std::printf("%-7d %-7d %-12.2f %-12.2f %-12.2f %-9.2f %-10s %s\n",
                  sigma, n, dense_ms, sparse_ms, auto_ms, speedup,
                  auto_backend, same ? "yes" : "NO");
      std::string prefix = "sigma=" + std::to_string(sigma) +
                           ".n=" + std::to_string(n) + ".";
      bench::Report::Global().AddMetric(prefix + "dense_ms", dense_ms);
      bench::Report::Global().AddMetric(prefix + "sparse_ms", sparse_ms);
      bench::Report::Global().AddMetric(prefix + "auto_ms", auto_ms);
      bench::Report::Global().AddMetric(prefix + "speedup", speedup);
      bench::Report::Global().AddMetric(prefix + "identical",
                                        same ? 1.0 : 0.0);
    }
  }
}

void BM_SparseForward(benchmark::State& state) {
  Instance inst =
      MakeInstance(static_cast<int>(state.range(0)), 256, 101);
  const auto backend = state.range(1) == 0 ? kernels::BackendChoice::kDense
                                           : kernels::BackendChoice::kSparse;
  query::EmaxContext ctx(inst.mu, backend);
  for (auto _ : state) {
    auto best = ctx.TopAnswer(inst.t);
    benchmark::DoNotOptimize(best);
  }
  state.counters["sigma"] = static_cast<double>(state.range(0));
  state.counters["sparse"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SparseForward)
    ->Args({64, 0})->Args({64, 1})
    ->Args({256, 0})->Args({256, 1});

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("sparse_scaling");
  tms::PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
