// E12 — inter-answer delay distributions for the three enumeration
// engines. The paper's guarantees are *delay* bounds: unranked
// enumeration has polynomial delay (Theorem 4.1), E_max-ranked
// enumeration has polynomial delay (Theorem 4.3), and I_max-ranked
// s-projector enumeration has polynomial delay (Theorem 5.11). The
// reproduction tables record the realized delay distribution (max, p50,
// p99) per engine and instance size via obs::DelayRecorder histograms;
// BENCH_enumeration_delay.json is the machine-readable baseline.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "exec/fault.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "obs/delay.h"
#include "obs/explain.h"
#include "obs/query_scope.h"
#include "ranking/lawler.h"
#include "projector/imax_enum.h"
#include "projector/sprojector.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

// Per-query explain reports collected across the measured runs; written
// as BENCH_enumeration_delay_explain.json beside the main report so a
// delay regression can be attributed to a phase (compose / solve / merge
// / confidence) without rerunning the bench under a profiler.
std::vector<std::string>& ExplainDocs() {
  static std::vector<std::string> docs;
  return docs;
}

// Runs `fn` under its own obs::QueryScope and captures the per-query
// explain JSON. The engines must be constructed inside `fn` so they
// capture the scope's trace context.
template <typename Fn>
void RunAsQuery(const std::string& name, int threads, Fn fn) {
  obs::QueryScope scope(name);
  const int64_t start_ns = obs::MonotonicNanos();
  fn();
  obs::ExplainInput input;
  input.query = name;
  input.query_id = scope.query_id();
  input.duration_ns = obs::MonotonicNanos() - start_ns;
  input.threads = threads;
  input.stats = scope.Snapshot();
  ExplainDocs().push_back(obs::ExplainJson(input));
}

// Writes the sidecar ({"bench":...,"queries":[{"explain":{...}}, ...]})
// to the same directory as the main report. Returns false on I/O failure.
bool WriteExplainSidecar() {
  std::string dir = ".";
  if (const char* env = std::getenv("TMS_BENCH_JSON_DIR")) dir = env;
  const std::string path = dir + "/BENCH_enumeration_delay_explain.json";
  std::string doc = "{\"bench\":\"enumeration_delay\",\"queries\":[";
  bool first = true;
  for (const std::string& e : ExplainDocs()) {
    if (!first) doc += ',';
    first = false;
    doc += e;
  }
  doc += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARNING: failed to write %s\n", path.c_str());
    return false;
  }
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

projector::SProjector RandomProjector(const Alphabet& ab, Rng& rng) {
  auto p = projector::SProjector::Create(
      workload::RandomDfa(ab, 2, rng, 0.6), workload::RandomDfa(ab, 2, rng, 0.6),
      workload::RandomDfa(ab, 2, rng, 0.6));
  return std::move(p).value();
}

// Runs `next` until exhaustion (or `limit` answers), lapping a dedicated
// delay histogram `bench.delay.<engine>.n<k>` per answer, then prints one
// table row and records the distribution in the bench JSON.
template <typename NextFn>
void MeasureDelays(const char* engine, int n, int limit, NextFn next) {
  std::string cell =
      std::string("bench.delay.") + engine + ".n" + std::to_string(n);
  obs::DelayRecorder delay(cell);
  int count = 0;
  delay.Restart();
  while (count < limit && next()) {
    delay.RecordAnswer();
    ++count;
  }
  obs::HistogramSnapshot snap = delay.Snapshot();
  double max_ms = static_cast<double>(snap.max) * 1e-6;
  double p50_ms = snap.Quantile(0.5) * 1e-6;
  double p99_ms = snap.Quantile(0.99) * 1e-6;
  double total_ms = static_cast<double>(snap.sum) * 1e-6;
  std::printf("%-10s %-6d %-10d %-14.3f %-12.3f %-12.3f %-12.3f\n", engine, n,
              count, max_ms, p50_ms, p99_ms, total_ms);
  std::string prefix = std::string(engine) + ".n=" + std::to_string(n) + ".";
  bench::Report::Global().AddMetric(prefix + "answers", count);
  bench::Report::Global().AddMetric(prefix + "max_delay_ms", max_ms);
  bench::Report::Global().AddMetric(prefix + "p50_delay_ms", p50_ms);
  bench::Report::Global().AddMetric(prefix + "p99_delay_ms", p99_ms);
  bench::Report::Global().AddMetric(prefix + "total_ms", total_ms);
}

void PrintReproduction() {
  bench::PrintHeader(
      "E12: inter-answer delay distributions (Theorems 4.1, 4.3, 5.11)",
      "all three enumeration engines guarantee polynomial delay; the "
      "measured max / p50 / p99 inter-answer delays must grow polynomially "
      "with n and stay flat in the number of answers already emitted.");

  std::printf("%-10s %-6s %-10s %-14s %-12s %-12s %-12s\n", "engine", "n",
              "answers", "max (ms)", "p50 (ms)", "p99 (ms)", "total (ms)");
  for (int n : {8, 16, 32, 64}) {
    Instance inst = MakeInstance(n, 211);
    RunAsQuery("unranked.n=" + std::to_string(n), 1, [&] {
      query::UnrankedEnumerator it(inst.mu, inst.t);
      MeasureDelays("unranked", n, 200,
                    [&] { return it.Next().has_value(); });
    });
  }
  for (int n : {8, 16, 32, 64}) {
    Instance inst = MakeInstance(n, 211);
    RunAsQuery("emax.n=" + std::to_string(n), 1, [&] {
      query::EmaxEnumerator it(inst.mu, inst.t);
      MeasureDelays("emax", n, 100, [&] { return it.Next().has_value(); });
    });
  }
  for (int n : {8, 16, 32}) {
    // Random projectors can be empty on a given seed; scan a fixed seed
    // range for one with a nonempty answer set so every row measures
    // real delays (still fully deterministic).
    bool measured = false;
    for (uint64_t seed = 223; seed < 239 && !measured; ++seed) {
      Rng rng(seed);
      markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
      projector::SProjector p = RandomProjector(mu.nodes(), rng);
      auto probe = projector::ImaxEnumerator::Create(&mu, &p);
      if (!probe.ok() || !probe->Next().has_value()) continue;
      RunAsQuery("imax.n=" + std::to_string(n), 1, [&] {
        auto it = projector::ImaxEnumerator::Create(&mu, &p);
        MeasureDelays("imax", n, 100,
                      [&] { return it->Next().has_value(); });
      });
      measured = true;
    }
    if (!measured) {
      bench::Report::Global().AddSkip(
          "imax: no projector with answers in seed range at n=" +
          std::to_string(n));
    }
  }
}

// The same E12 E_max workload driven end-to-end at several thread counts.
// The per-pop child subspaces are solved on an exec::ThreadPool and merged
// deterministically, so besides the wall-time column the harness checks —
// and records — that every thread count emits the exact answer stream of
// the sequential engine.
void PrintMultiThread() {
  bench::PrintHeader(
      "E12b: total enumeration wall-time vs thread count (parallel Lawler)",
      "child subspaces of each Lawler pop are independent and solved "
      "concurrently with a deterministic merge: the emitted stream is "
      "byte-identical at every thread count while the total enumeration "
      "wall-time for the same answer budget drops.");

  std::printf("%-8s %-6s %-10s %-12s %-10s\n", "threads", "n", "answers",
              "total (ms)", "identical");
  for (int n : {32, 64}) {
    std::vector<ranking::ScoredAnswer> reference;
    for (int threads : {1, 2, 4}) {
      Instance inst = MakeInstance(n, 211);
      std::unique_ptr<exec::ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<exec::ThreadPool>(threads - 1);
      }
      std::vector<ranking::ScoredAnswer> answers;
      double total_ms = 0.0;
      RunAsQuery("emax.threads=" + std::to_string(threads) +
                     ".n=" + std::to_string(n),
                 threads, [&] {
        query::EmaxEnumerator it(
            inst.mu, inst.t,
            query::EmaxEnumerator::Options{pool.get(), nullptr});
        Stopwatch wall;
        while (static_cast<int>(answers.size()) < 100) {
          auto answer = it.Next();
          if (!answer.has_value()) break;
          answers.push_back(std::move(*answer));
        }
        total_ms = wall.ElapsedSeconds() * 1e3;
      });

      bool identical = true;
      if (threads == 1) {
        reference = answers;
      } else {
        identical = answers.size() == reference.size();
        for (size_t i = 0; identical && i < answers.size(); ++i) {
          identical = answers[i].output == reference[i].output &&
                      answers[i].score == reference[i].score;
        }
      }
      std::printf("%-8d %-6d %-10zu %-12.3f %-10s\n", threads, n,
                  answers.size(), total_ms, identical ? "yes" : "NO");
      std::string prefix = "emax.threads=" + std::to_string(threads) +
                           ".n=" + std::to_string(n) + ".";
      bench::Report::Global().AddMetric(prefix + "answers",
                                        static_cast<double>(answers.size()));
      bench::Report::Global().AddMetric(prefix + "total_ms", total_ms);
      bench::Report::Global().AddMetric(prefix + "identical",
                                        identical ? 1.0 : 0.0);
      if (!identical) {
        bench::Report::Global().AddSkip(
            "E12b: thread count " + std::to_string(threads) +
            " diverged from the sequential stream at n=" + std::to_string(n));
      }
    }
  }
}

bool IsPrefixOf(const std::vector<ranking::ScoredAnswer>& prefix,
                const std::vector<ranking::ScoredAnswer>& stream) {
  if (prefix.size() > stream.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].output != stream[i].output ||
        prefix[i].score != stream[i].score) {
      return false;
    }
  }
  return true;
}

// The bounded-execution contract (docs/ROBUSTNESS.md) under the bench
// harness: a wall-clock deadline may be overrun by at most one
// answer-delay, and a drained work budget truncates the stream to a
// byte-identical prefix of the unbounded one at every thread count. The
// exec.budget.* / exec.fault.* counters accumulated by these runs are
// exported as first-class metrics so the bench JSON records how much work
// each limit admitted. Returns false when the contract is violated — the
// binary then exits nonzero.
bool PrintBounded() {
  bench::PrintHeader(
      "E12c: bounded execution (deadline overshoot, budget truncation)",
      "a fired limit stops the stream at the next answer boundary: the "
      "truncated stream is a byte-identical prefix of the unbounded one "
      "at every thread count, and a deadline is overrun by at most one "
      "answer-delay.");

  bool ok = true;
  const int n = 64;
  Instance inst = MakeInstance(n, 211);

  // Unbounded reference stream and its worst single answer-delay — the
  // yardstick a deadline overshoot is measured against.
  std::vector<ranking::ScoredAnswer> reference;
  double ref_max_delay_ms = 0.0;
  {
    query::EmaxEnumerator it(inst.mu, inst.t);
    Stopwatch lap;
    while (static_cast<int>(reference.size()) < 100) {
      auto answer = it.Next();
      double delay_ms = lap.LapSeconds() * 1e3;
      if (!answer.has_value()) break;
      ref_max_delay_ms = std::max(ref_max_delay_ms, delay_ms);
      reference.push_back(std::move(*answer));
    }
  }

  // Deadline overshoot: stop the same enumeration mid-stream with a
  // wall-clock deadline. The engine checks the clock at every charge and
  // answer boundary, so it may run past the deadline by at most the time
  // of one in-flight answer; allow 2x the reference max delay plus a 5 ms
  // scheduler-granularity floor so a CI context switch cannot flake the
  // bench.
  {
    const int64_t deadline_ms = 20;
    exec::RunContext run;
    // The stopwatch and the deadline share an origin so the measured
    // overshoot covers everything the deadline does, enumerator
    // construction included.
    Stopwatch wall;
    run.set_deadline_after_ms(deadline_ms);
    query::EmaxEnumerator it(
        inst.mu, inst.t,
        query::EmaxEnumerator::Options{nullptr, nullptr, &run});
    std::vector<ranking::ScoredAnswer> answers;
    while (true) {
      auto answer = it.Next();
      if (!answer.has_value()) break;
      answers.push_back(std::move(*answer));
    }
    double wall_ms = wall.ElapsedSeconds() * 1e3;
    double overshoot_ms =
        std::max(0.0, wall_ms - static_cast<double>(deadline_ms));
    double bound_ms = std::max(2.0 * ref_max_delay_ms, 5.0);
    bool within = overshoot_ms <= bound_ms;
    // The shorter of the two streams must be an exact prefix of the other
    // (the reference itself is capped at 100 answers).
    bool prefix = answers.size() <= reference.size()
                      ? IsPrefixOf(answers, reference)
                      : IsPrefixOf(reference, answers);
    std::printf(
        "deadline   %-6d ms: stopped after %zu answers in %.3f ms "
        "(overshoot %.3f ms, bound %.3f ms) %s %s\n",
        static_cast<int>(deadline_ms), answers.size(), wall_ms, overshoot_ms,
        bound_ms, within ? "within" : "EXCEEDED", prefix ? "" : "NOT-PREFIX");
    bench::Report::Global().AddMetric("deadline.wall_ms", wall_ms);
    bench::Report::Global().AddMetric("deadline.overshoot_ms", overshoot_ms);
    bench::Report::Global().AddMetric("deadline.bound_ms", bound_ms);
    bench::Report::Global().AddMetric("deadline.within_bound",
                                      within ? 1.0 : 0.0);
    bench::Report::Global().AddMetric("deadline.answers",
                                      static_cast<double>(answers.size()));
    if (!run.truncated()) {
      bench::Report::Global().AddSkip(
          "E12c: stream exhausted before the deadline fired; overshoot not "
          "measured");
    } else if (!within || !prefix) {
      ok = false;
    }
  }

  // Budget truncation: the per-pop charge totals are independent of the
  // thread count, so the truncated stream must be the exact same prefix
  // of the reference stream no matter how many workers solve subspaces.
  std::printf("%-8s %-8s %-10s %-8s\n", "budget", "threads", "answers",
              "prefix");
  for (int64_t budget : {1, 5, 20}) {
    std::vector<ranking::ScoredAnswer> first;
    bool have_first = false;
    for (int threads : {1, 4}) {
      exec::RunContext run;
      run.set_work_budget(budget);
      std::unique_ptr<exec::ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<exec::ThreadPool>(threads - 1);
      }
      query::EmaxEnumerator it(
          inst.mu, inst.t,
          query::EmaxEnumerator::Options{pool.get(), nullptr, &run});
      std::vector<ranking::ScoredAnswer> answers;
      while (true) {
        auto answer = it.Next();
        if (!answer.has_value()) break;
        answers.push_back(std::move(*answer));
      }
      bool prefix = IsPrefixOf(answers, reference);
      bool identical = !have_first || (answers.size() == first.size() &&
                                       IsPrefixOf(answers, first));
      if (!have_first) {
        first = answers;
        have_first = true;
      }
      std::printf("%-8lld %-8d %-10zu %-8s\n",
                  static_cast<long long>(budget), threads, answers.size(),
                  prefix && identical ? "yes" : "NO");
      std::string prefix_key = "budget=" + std::to_string(budget) +
                               ".threads=" + std::to_string(threads) + ".";
      bench::Report::Global().AddMetric(prefix_key + "answers",
                                        static_cast<double>(answers.size()));
      bench::Report::Global().AddMetric(prefix_key + "prefix_ok",
                                        prefix && identical ? 1.0 : 0.0);
      if (!prefix || !identical) {
        ok = false;
        bench::Report::Global().AddSkip(
            "E12c: budget " + std::to_string(budget) + " at " +
            std::to_string(threads) +
            " threads diverged from the unbounded stream");
      }
    }
  }

#if TMS_FAULTS_ACTIVE
  // One delayed solve through the injector so the exec.fault.* counters
  // are live in the exported metrics (and the bench exercises the
  // injected-delay path end to end).
  exec::FaultInjector::Global().ScheduleDelay(
      "lawler.pre_solve", /*nth_hit=*/1, std::chrono::microseconds(50));
  {
    exec::RunContext run;
    run.set_max_answers(2);
    query::EmaxEnumerator it(
        inst.mu, inst.t,
        query::EmaxEnumerator::Options{nullptr, nullptr, &run});
    while (it.Next().has_value()) {
    }
  }
  exec::FaultInjector::Global().Reset();
#endif

  // Export the bounded-execution counters as first-class bench metrics
  // (they also appear in the registry dump, but dashboards read the
  // experiment metrics).
  for (const char* name :
       {"exec.budget.work_charged", "exec.budget.answer_capped",
        "exec.budget.budget_exhausted", "exec.budget.deadline_exceeded",
        "exec.budget.cancelled", "exec.budget.faults", "exec.fault.hits",
        "exec.fault.delays", "exec.fault.cancels", "exec.fault.failures"}) {
    bench::Report::Global().AddMetric(
        name,
        static_cast<double>(obs::Registry::Global().counter(name).value()));
  }
  return ok;
}

}  // namespace
}  // namespace tms

// Unlike the other benches this one registers no google-benchmark cases:
// the delay distributions above are the whole measurement. E12c asserts
// the bounded-execution contract — a violated deadline-overshoot bound or
// a non-prefix truncated stream fails the binary.
int main() {
  tms::bench::Session session("enumeration_delay");
  tms::PrintReproduction();
  tms::PrintMultiThread();
  bool bounded_ok = tms::PrintBounded();
  bool sidecar_ok = tms::WriteExplainSidecar();
  return bounded_ok && sidecar_ok ? 0 : 1;
}
