// E12 — inter-answer delay distributions for the three enumeration
// engines. The paper's guarantees are *delay* bounds: unranked
// enumeration has polynomial delay (Theorem 4.1), E_max-ranked
// enumeration has polynomial delay (Theorem 4.3), and I_max-ranked
// s-projector enumeration has polynomial delay (Theorem 5.11). The
// reproduction tables record the realized delay distribution (max, p50,
// p99) per engine and instance size via obs::DelayRecorder histograms;
// BENCH_enumeration_delay.json is the machine-readable baseline.

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "exec/thread_pool.h"
#include "obs/delay.h"
#include "ranking/lawler.h"
#include "projector/imax_enum.h"
#include "projector/sprojector.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

projector::SProjector RandomProjector(const Alphabet& ab, Rng& rng) {
  auto p = projector::SProjector::Create(
      workload::RandomDfa(ab, 2, rng, 0.6), workload::RandomDfa(ab, 2, rng, 0.6),
      workload::RandomDfa(ab, 2, rng, 0.6));
  return std::move(p).value();
}

// Runs `next` until exhaustion (or `limit` answers), lapping a dedicated
// delay histogram `bench.delay.<engine>.n<k>` per answer, then prints one
// table row and records the distribution in the bench JSON.
template <typename NextFn>
void MeasureDelays(const char* engine, int n, int limit, NextFn next) {
  std::string cell =
      std::string("bench.delay.") + engine + ".n" + std::to_string(n);
  obs::DelayRecorder delay(cell);
  int count = 0;
  delay.Restart();
  while (count < limit && next()) {
    delay.RecordAnswer();
    ++count;
  }
  obs::HistogramSnapshot snap = delay.Snapshot();
  double max_ms = static_cast<double>(snap.max) * 1e-6;
  double p50_ms = snap.Quantile(0.5) * 1e-6;
  double p99_ms = snap.Quantile(0.99) * 1e-6;
  double total_ms = static_cast<double>(snap.sum) * 1e-6;
  std::printf("%-10s %-6d %-10d %-14.3f %-12.3f %-12.3f %-12.3f\n", engine, n,
              count, max_ms, p50_ms, p99_ms, total_ms);
  std::string prefix = std::string(engine) + ".n=" + std::to_string(n) + ".";
  bench::Report::Global().AddMetric(prefix + "answers", count);
  bench::Report::Global().AddMetric(prefix + "max_delay_ms", max_ms);
  bench::Report::Global().AddMetric(prefix + "p50_delay_ms", p50_ms);
  bench::Report::Global().AddMetric(prefix + "p99_delay_ms", p99_ms);
  bench::Report::Global().AddMetric(prefix + "total_ms", total_ms);
}

void PrintReproduction() {
  bench::PrintHeader(
      "E12: inter-answer delay distributions (Theorems 4.1, 4.3, 5.11)",
      "all three enumeration engines guarantee polynomial delay; the "
      "measured max / p50 / p99 inter-answer delays must grow polynomially "
      "with n and stay flat in the number of answers already emitted.");

  std::printf("%-10s %-6s %-10s %-14s %-12s %-12s %-12s\n", "engine", "n",
              "answers", "max (ms)", "p50 (ms)", "p99 (ms)", "total (ms)");
  for (int n : {8, 16, 32, 64}) {
    Instance inst = MakeInstance(n, 211);
    query::UnrankedEnumerator it(inst.mu, inst.t);
    MeasureDelays("unranked", n, 200,
                  [&] { return it.Next().has_value(); });
  }
  for (int n : {8, 16, 32, 64}) {
    Instance inst = MakeInstance(n, 211);
    query::EmaxEnumerator it(inst.mu, inst.t);
    MeasureDelays("emax", n, 100, [&] { return it.Next().has_value(); });
  }
  for (int n : {8, 16, 32}) {
    // Random projectors can be empty on a given seed; scan a fixed seed
    // range for one with a nonempty answer set so every row measures
    // real delays (still fully deterministic).
    bool measured = false;
    for (uint64_t seed = 223; seed < 239 && !measured; ++seed) {
      Rng rng(seed);
      markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
      projector::SProjector p = RandomProjector(mu.nodes(), rng);
      auto probe = projector::ImaxEnumerator::Create(&mu, &p);
      if (!probe.ok() || !probe->Next().has_value()) continue;
      auto it = projector::ImaxEnumerator::Create(&mu, &p);
      MeasureDelays("imax", n, 100, [&] { return it->Next().has_value(); });
      measured = true;
    }
    if (!measured) {
      bench::Report::Global().AddSkip(
          "imax: no projector with answers in seed range at n=" +
          std::to_string(n));
    }
  }
}

// The same E12 E_max workload driven end-to-end at several thread counts.
// The per-pop child subspaces are solved on an exec::ThreadPool and merged
// deterministically, so besides the wall-time column the harness checks —
// and records — that every thread count emits the exact answer stream of
// the sequential engine.
void PrintMultiThread() {
  bench::PrintHeader(
      "E12b: total enumeration wall-time vs thread count (parallel Lawler)",
      "child subspaces of each Lawler pop are independent and solved "
      "concurrently with a deterministic merge: the emitted stream is "
      "byte-identical at every thread count while the total enumeration "
      "wall-time for the same answer budget drops.");

  std::printf("%-8s %-6s %-10s %-12s %-10s\n", "threads", "n", "answers",
              "total (ms)", "identical");
  for (int n : {32, 64}) {
    std::vector<ranking::ScoredAnswer> reference;
    for (int threads : {1, 2, 4}) {
      Instance inst = MakeInstance(n, 211);
      std::unique_ptr<exec::ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<exec::ThreadPool>(threads - 1);
      }
      query::EmaxEnumerator it(
          inst.mu, inst.t,
          query::EmaxEnumerator::Options{pool.get(), nullptr});
      std::vector<ranking::ScoredAnswer> answers;
      Stopwatch wall;
      while (static_cast<int>(answers.size()) < 100) {
        auto answer = it.Next();
        if (!answer.has_value()) break;
        answers.push_back(std::move(*answer));
      }
      double total_ms = wall.ElapsedSeconds() * 1e3;

      bool identical = true;
      if (threads == 1) {
        reference = answers;
      } else {
        identical = answers.size() == reference.size();
        for (size_t i = 0; identical && i < answers.size(); ++i) {
          identical = answers[i].output == reference[i].output &&
                      answers[i].score == reference[i].score;
        }
      }
      std::printf("%-8d %-6d %-10zu %-12.3f %-10s\n", threads, n,
                  answers.size(), total_ms, identical ? "yes" : "NO");
      std::string prefix = "emax.threads=" + std::to_string(threads) +
                           ".n=" + std::to_string(n) + ".";
      bench::Report::Global().AddMetric(prefix + "answers",
                                        static_cast<double>(answers.size()));
      bench::Report::Global().AddMetric(prefix + "total_ms", total_ms);
      bench::Report::Global().AddMetric(prefix + "identical",
                                        identical ? 1.0 : 0.0);
      if (!identical) {
        bench::Report::Global().AddSkip(
            "E12b: thread count " + std::to_string(threads) +
            " diverged from the sequential stream at n=" + std::to_string(n));
      }
    }
  }
}

}  // namespace
}  // namespace tms

// Unlike the other benches this one registers no google-benchmark cases:
// the delay distributions above are the whole measurement.
int main() {
  tms::bench::Session session("enumeration_delay");
  tms::PrintReproduction();
  tms::PrintMultiThread();
  return 0;
}
