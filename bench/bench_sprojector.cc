// E8 — Table 2, columns "s-projectors": ranked evaluation by I_max is an
// n-approximation of the confidence order (Theorem 5.2 / Prop. 5.9), and
// confidence computation costs O(n·|o|²·|Σ|²·|Q_B|²·4^{|Q_E|})
// (Theorem 5.5) — exponential only in the suffix constraint. The
// reproduction tables measure (a) the realized I_max/conf ratio against
// the Prop. 5.9 bound and (b) the concatenation-DFA blowup as |Q_E| grows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

#include "automata/regex.h"
#include "bench_util.h"
#include "markov/world_iter.h"
#include "projector/imax_enum.h"
#include "projector/indexed_confidence.h"
#include "projector/sprojector.h"
#include "projector/sprojector_confidence.h"
#include "workload/random_models.h"

namespace tms {
namespace {

projector::SProjector RandomProjector(const Alphabet& ab, Rng& rng) {
  auto p = projector::SProjector::Create(
      workload::RandomDfa(ab, 2, rng, 0.6), workload::RandomDfa(ab, 2, rng, 0.6),
      workload::RandomDfa(ab, 2, rng, 0.6));
  return std::move(p).value();
}

void PrintImaxRatioTable() {
  bench::PrintHeader(
      "E8: s-projectors — I_max as an n-approximate confidence order "
      "(Thm 5.2 / Prop 5.9)",
      "I_max(o) ≤ conf(o) ≤ n·I_max(o); the I_max order is an n-approximate "
      "confidence order — exponentially better than the |Σ|^n ratio for "
      "general transducers.");

  std::printf("%-8s %-6s %-10s %-18s %-10s\n", "seed", "n", "answers",
              "max conf/I_max", "bound n+1");
  for (uint64_t seed : {73, 79, 83, 89}) {
    const int n = 6;
    Rng rng(seed);
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
    projector::SProjector p = RandomProjector(mu.nodes(), rng);
    auto conf_computer = projector::IndexedConfidence::Create(&mu, &p);

    // Ground-truth confidences by brute force.
    std::map<Str, double> conf;
    markov::ForEachWorld(mu, [&](const Str& world, double mass) {
      std::set<Str> outputs;
      for (int i = 1; i <= n + 1; ++i) {
        for (int len = 0; i + len - 1 <= n; ++len) {
          if (len > 0 && i > n) break;
          Str o(world.begin() + (i - 1), world.begin() + (i - 1 + len));
          if (p.MatchesIndexed(world, projector::IndexedAnswer{o, i})) {
            outputs.insert(o);
          }
        }
      }
      for (const Str& o : outputs) conf[o] += mass;
    });

    double max_ratio = 0;
    for (const auto& [o, c] : conf) {
      double imax = projector::ImaxOfAnswer(*conf_computer, o);
      if (imax > 0) max_ratio = std::max(max_ratio, c / imax);
    }
    std::printf("%-8llu %-6d %-10zu %-18.3f %d\n",
                static_cast<unsigned long long>(seed), n, conf.size(),
                max_ratio, n + 1);
  }
}

void PrintConcatBlowupTable() {
  // The Theorem 5.4 hard shape: B = Σ*, A = {ε}, and a SMALL suffix DFA
  // E_k = "n1 followed by exactly k−1 more symbols" (k+2 states). The
  // concatenation Σ*·ε·E_k is the classic "k-th symbol from the end is 1"
  // language whose minimal DFA needs 2^k states — the 4^{|Q_E|} factor of
  // Theorem 5.5 made visible.
  std::printf(
      "\nTheorem 5.5 / 5.4: the exponential-in-|Q_E| factor — "
      "concatenation-DFA size for\nB = Σ*, A = {ε}, E_k = \"n1 .^(k-1)\" "
      "(a (k+2)-state DFA):\n");
  std::printf("%-6s %-12s %-18s %-14s\n", "k", "|Q_E|",
              "concat DFA states", "2^k");
  Rng rng(97);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 24, 2, rng);
  for (int k = 1; k <= 10; ++k) {
    std::string pattern = "n1";
    for (int i = 0; i < k - 1; ++i) pattern += " .";
    auto e2 = automata::CompileRegexToDfa(mu.nodes(), pattern);
    auto p2 = projector::SProjector::Create(
        automata::Dfa::AcceptAll(mu.nodes()),
        automata::Dfa::EmptyStringOnly(mu.nodes()), *e2);
    projector::SProjectorConfidenceStats stats;
    auto conf = projector::SProjectorConfidence(mu, *p2, Str{}, &stats);
    std::printf("%-6d %-12d %-18d %-14.0f\n", k, e2->num_states(),
                stats.concat_dfa_states, std::pow(2.0, k));
  }
}

void BM_SProjectorConfidence_SuffixStates(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(101);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(2, 24, 2, rng);
  std::string pattern = "n1";
  for (int i = 0; i < k - 1; ++i) pattern += " .";
  auto e = automata::CompileRegexToDfa(mu.nodes(), pattern);
  auto p = projector::SProjector::Create(
      automata::Dfa::AcceptAll(mu.nodes()),
      automata::Dfa::EmptyStringOnly(mu.nodes()), *e);
  for (auto _ : state) {
    auto conf = projector::SProjectorConfidence(mu, *p, Str{});
    benchmark::DoNotOptimize(conf);
  }
  state.counters["QE"] = static_cast<double>(e->num_states());
}
BENCHMARK(BM_SProjectorConfidence_SuffixStates)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

// Ablation (Lemma 5.10): the Lawler-based I_max enumerator (polynomial
// delay) vs the dedup-based one (incremental polynomial time only — it
// may wade through "a large chunk of duplicates" between outputs).
void PrintDedupAblation() {
  std::printf(
      "\nAblation — Lemma 5.10 strategies (first 20 outputs):\n");
  std::printf("%-6s %-22s %-26s\n", "n", "Lawler subspace solves",
              "dedup indexed-answers consumed");
  for (int n : {8, 16, 32}) {
    Rng rng(211);
    markov::MarkovSequence mu = workload::RandomMarkovSequence(2, n, 2, rng);
    // Simple projector [*]"n1+"[*]: every run of n1 symbols is an
    // occurrence, so the same output recurs at many indices — the
    // duplicate-heavy regime Lemma 5.10 warns about.
    auto pattern = automata::CompileRegexToDfa(mu.nodes(), "n1 +");
    projector::SProjector p =
        std::move(projector::SProjector::Simple(std::move(*pattern))).value();

    auto lawler = projector::ImaxEnumerator::Create(&mu, &p);
    int lawler_outputs = 0;
    while (lawler_outputs < 20 && lawler->Next().has_value()) {
      ++lawler_outputs;
    }
    auto simple = projector::SimpleImaxEnumerator::Create(&mu, &p);
    int simple_outputs = 0;
    while (simple_outputs < 20 && simple->Next().has_value()) {
      ++simple_outputs;
    }
    // Lawler solves ≤ |answer|+1 subspaces per output — report the bound
    // side by side with the dedup enumerator's duplicate consumption.
    std::printf("%-6d ≤ %-20d %-26lld\n", n, lawler_outputs * (n + 2),
                static_cast<long long>(simple->consumed()));
  }
}

void BM_SimpleImaxTop20(benchmark::State& state) {
  Rng rng(223);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(
      2, static_cast<int>(state.range(0)), 2, rng);
  projector::SProjector p = RandomProjector(mu.nodes(), rng);
  for (auto _ : state) {
    auto it = projector::SimpleImaxEnumerator::Create(&mu, &p);
    int count = 0;
    while (count < 20 && it->Next().has_value()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SimpleImaxTop20)->Arg(16)->Arg(32)->Arg(64);

void BM_LawlerImaxTop20(benchmark::State& state) {
  Rng rng(223);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(
      2, static_cast<int>(state.range(0)), 2, rng);
  projector::SProjector p = RandomProjector(mu.nodes(), rng);
  for (auto _ : state) {
    auto it = projector::ImaxEnumerator::Create(&mu, &p);
    int count = 0;
    while (count < 20 && it->Next().has_value()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LawlerImaxTop20)->Arg(16)->Arg(32)->Arg(64);

void BM_ImaxTopK(benchmark::State& state) {
  Rng rng(103);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(
      2, static_cast<int>(state.range(0)), 2, rng);
  projector::SProjector p = RandomProjector(mu.nodes(), rng);
  for (auto _ : state) {
    auto topk = projector::TopKByImax(mu, p, 10);
    benchmark::DoNotOptimize(topk);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImaxTopK)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("sprojector");
  tms::PrintImaxRatioTable();
  tms::PrintConcatBlowupTable();
  tms::PrintDedupAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
