// E6 — Table 2, row 2, columns "general/uniform/deterministic": ranked
// enumeration by decreasing E_max with polynomial delay (Theorem 4.3),
// whose guaranteed confidence-approximation ratio is |Σ|^n. The
// reproduction table (a) checks the emitted stream is E_max-sorted,
// (b) measures per-answer delay as n grows, and (c) on brute-forceable
// instances, measures the empirically realized confidence-approximation
// ratio of the heuristic order.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "markov/world_iter.h"
#include "query/emax_enum.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 2, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.deterministic = true;
  opts.max_emission = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  return Instance{std::move(mu), std::move(t)};
}

void PrintDelayTable() {
  bench::PrintHeader(
      "E6: ranked enumeration by E_max (Theorem 4.3)",
      "polynomial delay; scores nonincreasing; as a confidence order the "
      "worst-case ratio is |Σ|^n (measured ratio below is instance-"
      "dependent but must respect the bound).");

  std::printf("%-6s %-12s %-16s %-14s %-10s\n", "n", "answers",
              "max delay (ms)", "mean (ms)", "sorted?");
  for (int n : {8, 16, 32, 64}) {
    Instance inst = MakeInstance(n, 41);
    query::EmaxEnumerator it(inst.mu, inst.t);
    Stopwatch watch;
    double max_ms = 0, total_ms = 0;
    double prev_score = 1e300;
    bool sorted = true;
    int count = 0;
    while (count < 100) {
      watch.Restart();
      auto answer = it.Next();
      double ms = watch.ElapsedSeconds() * 1e3;
      if (!answer.has_value()) break;
      ++count;
      max_ms = std::max(max_ms, ms);
      total_ms += ms;
      if (answer->score > prev_score + 1e-12) sorted = false;
      prev_score = answer->score;
    }
    std::printf("%-6d %-12d %-16.3f %-14.3f %s\n", n, count, max_ms,
                count ? total_ms / count : 0.0, sorted ? "yes" : "NO");
    std::string prefix = "n=" + std::to_string(n) + ".";
    bench::Report::Global().AddMetric(prefix + "answers", count);
    bench::Report::Global().AddMetric(prefix + "max_delay_ms", max_ms);
    bench::Report::Global().AddMetric(prefix + "mean_delay_ms",
                                      count ? total_ms / count : 0.0);
    bench::Report::Global().AddMetric(prefix + "sorted", sorted ? 1.0 : 0.0);
  }
}

void PrintApproxRatioTable() {
  std::printf(
      "\nEmpirical confidence-approximation ratio of the E_max order\n"
      "(max over pairs emitted out of confidence order of conf(later)/"
      "conf(earlier); the paper guarantees only |Σ|^n):\n");
  std::printf("%-8s %-10s %-14s %-14s\n", "seed", "answers", "ratio",
              "|Σ|^n bound");
  for (uint64_t seed : {43, 47, 53, 59}) {
    const int n = 6;
    Instance inst = MakeInstance(n, seed);
    // Ground-truth confidences.
    std::map<Str, double> conf;
    markov::ForEachWorld(inst.mu, [&](const Str& world, double p) {
      auto o = inst.t.TransduceDeterministic(world);
      if (o.has_value()) conf[*o] += p;
    });
    query::EmaxEnumerator it(inst.mu, inst.t);
    std::vector<Str> order;
    while (auto answer = it.Next()) order.push_back(answer->output);
    double ratio = 1.0;
    for (size_t i = 0; i < order.size(); ++i) {
      for (size_t j = i + 1; j < order.size(); ++j) {
        ratio = std::max(ratio, conf.at(order[j]) / conf.at(order[i]));
      }
    }
    std::printf("%-8llu %-10zu %-14.3f %.0f\n",
                static_cast<unsigned long long>(seed), order.size(), ratio,
                std::pow(3.0, n));
  }
}

void BM_EmaxTopK(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 61);
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto topk = query::TopKByEmax(inst.mu, inst.t, k);
    benchmark::DoNotOptimize(topk);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["k"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_EmaxTopK)
    ->Args({16, 1})->Args({16, 10})->Args({16, 50})
    ->Args({64, 1})->Args({64, 10})->Args({64, 50});

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("enumeration_emax");
  tms::PrintDelayTable();
  tms::PrintApproxRatioTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
