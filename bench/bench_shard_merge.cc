// Sharded batch evaluation vs the single-process reference.
//
// The scatter/gather path (docs/DISTRIBUTED.md) buys horizontal scale
// with two overheads a caller should be able to price: each shard runs
// its own BatchEvaluator with its own composition cache (no sharing
// across shards, mimicking process isolation), and the per-shard ranked
// streams pay a k-way heap merge. This bench measures both:
//
//   1. EvaluateSharded at shards ∈ {1, 2, 4, 8} against the plain
//      EvaluateAll + RankedReferenceRows pipeline on the same
//      collection, asserting the merged rows stay byte-identical to the
//      reference (serialized through the wire formatter, exactly what
//      the differential suite pins);
//   2. the raw MergeStream over in-memory sources — entries/second as
//      the source count grows, the heap cost isolated from evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/merge_stream.h"
#include "dist/sharded_batch.h"
#include "serve/wire.h"
#include "strings/str.h"
#include "transducer/transducer.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  Alphabet alphabet;
  db::SequenceCollection collection{Alphabet()};
  transducer::Transducer query{Alphabet(), Alphabet()};
};

// A collection heavy enough that per-shard evaluation dominates setup:
// `count` random inhomogeneous models over an 8-symbol alphabet, plus a
// random 3-state transducer with identity loops grafted onto state 0 so
// every sequence has a nonempty ranked stream.
Instance MakeInstance(int count, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.alphabet = workload::MakeSymbols(8, "n");
  inst.collection = db::SequenceCollection(inst.alphabet);
  for (int i = 0; i < count; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "seq%03d", i);
    Status st = inst.collection.Insert(
        key, workload::RandomMarkovSequence(8, 12, 4, rng));
    if (!st.ok()) std::abort();
  }
  workload::RandomTransducerOptions opts;
  opts.num_states = 3;
  opts.max_emission = 1;
  opts.output_symbols = static_cast<int>(inst.alphabet.size());
  inst.query = workload::RandomTransducer(inst.alphabet, opts, rng);
  inst.query.SetAccepting(0);
  for (Symbol s = 0; s < static_cast<Symbol>(inst.alphabet.size()); ++s) {
    (void)inst.query.AddTransition(0, s, 0, Str{s});
  }
  return inst;
}

std::string SerializeRows(const Alphabet& output,
                          const std::vector<dist::RankedRow>& rows) {
  std::string out;
  for (const dist::RankedRow& row : rows) {
    serve::AppendBatchRowJson(row.key, FormatStr(output, row.answer.output),
                              row.answer.emax, row.answer.confidence, &out);
    out += '\n';
  }
  return out;
}

void PrintShardTable() {
  bench::PrintHeader(
      "Sharded batch vs single-process reference (64 sequences, k=4)",
      "EvaluateSharded splits the collection, evaluates each shard with "
      "an isolated composition cache, and k-way-merges the ranked "
      "streams; the merged bytes must equal the reference at every "
      "shard count.");
  const int k = 4;
  Instance inst = MakeInstance(64, 2026);

  db::BatchEvaluator::Options ref_options;
  ref_options.threads = 4;
  auto ref_batch =
      db::BatchEvaluator::Create(&inst.collection, &inst.query, ref_options);
  if (!ref_batch.ok()) std::abort();
  Stopwatch ref_watch;
  const std::vector<dist::RankedRow> reference =
      dist::RankedReferenceRows(ref_batch->EvaluateAll(k));
  const double reference_ms = ref_watch.ElapsedSeconds() * 1e3;
  const std::string reference_bytes =
      SerializeRows(inst.query.output_alphabet(), reference);
  std::printf("reference: EvaluateAll + rank sort, threads=4: %.2f ms, "
              "%zu rows\n\n",
              reference_ms, reference.size());
  bench::Report::Global().AddMetric("reference_ms", reference_ms);
  bench::Report::Global().AddMetric("rows",
                                    static_cast<double>(reference.size()));

  std::printf("%-8s %-14s %-10s %-6s\n", "shards", "sharded (ms)", "overhead",
              "same?");
  for (int shards : {1, 2, 4, 8}) {
    dist::ShardedBatchOptions options;
    options.shards = shards;
    options.threads = 4;
    Stopwatch watch;
    auto sharded = dist::EvaluateSharded(inst.collection, inst.query, k,
                                         options);
    const double sharded_ms = watch.ElapsedSeconds() * 1e3;
    if (!sharded.ok()) std::abort();
    const bool same =
        sharded->complete() &&
        SerializeRows(inst.query.output_alphabet(), sharded->rows) ==
            reference_bytes;
    const double overhead = reference_ms > 0 ? sharded_ms / reference_ms : 0;
    std::printf("%-8d %-14.2f %-10.2f %s\n", shards, sharded_ms, overhead,
                same ? "yes" : "NO");
    std::string prefix = "shards=" + std::to_string(shards) + ".";
    bench::Report::Global().AddMetric(prefix + "evaluate_ms", sharded_ms);
    bench::Report::Global().AddMetric(prefix + "overhead", overhead);
    bench::Report::Global().AddMetric(prefix + "identical", same ? 1.0 : 0.0);
  }
  std::printf("\n");
}

// The heap merge isolated: `sources` in-memory streams of `per_source`
// ranked entries each, drained to exhaustion.
std::vector<std::vector<dist::MergeEntry>> MakeStreams(int sources,
                                                       int per_source) {
  std::vector<std::vector<dist::MergeEntry>> streams(
      static_cast<size_t>(sources));
  for (int s = 0; s < sources; ++s) {
    double score = 1.0;
    for (int i = 0; i < per_source; ++i) {
      dist::MergeEntry e;
      char key[32];
      std::snprintf(key, sizeof(key), "s%02dk%05d", s, i);
      e.key = key;
      e.score = score;
      e.answer.emax = score;
      streams[static_cast<size_t>(s)].push_back(std::move(e));
      score *= 0.999;
    }
  }
  return streams;
}

void BM_MergeDrain(benchmark::State& state) {
  const int sources = static_cast<int>(state.range(0));
  const int per_source = 4096 / sources;  // constant total entries
  const auto streams = MakeStreams(sources, per_source);
  int64_t drained = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<dist::ShardSource>> shard_sources;
    shard_sources.reserve(streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
      dist::ShardCoverage coverage;
      coverage.shard_id = static_cast<int>(i);
      shard_sources.push_back(
          std::make_unique<dist::VectorShardSource>(streams[i], coverage));
    }
    dist::MergeStream merge(std::move(shard_sources));
    while (auto e = merge.Next()) {
      benchmark::DoNotOptimize(e->score);
      ++drained;
    }
  }
  state.SetItemsProcessed(drained);
  state.counters["sources"] = static_cast<double>(sources);
}
BENCHMARK(BM_MergeDrain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("shard_merge");
  tms::PrintShardTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
