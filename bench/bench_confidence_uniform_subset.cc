// E3 — Table 2, row 1, column "uniform emission": confidence for
// nondeterministic k-uniform transducers is computable in
// O(n·k·|Σ|²·4^{|Q|}) (Theorem 4.8) — polynomial in the data, exponential
// only in the (small) transducer. The sweep shows the exponential growth
// in |Q| and the linear growth in n.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/confidence.h"
#include "workload/random_models.h"

namespace tms {
namespace {

struct Instance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
  Str answer;
};

Instance MakeInstance(int n, int states, uint64_t seed) {
  Rng rng(seed);
  markov::MarkovSequence mu = workload::RandomMarkovSequence(3, n, 3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = states;
  opts.deterministic = false;
  opts.density = 2.0;  // real nondeterminism so subsets grow
  opts.uniform_k = 1;
  opts.output_symbols = 2;
  opts.accept_prob = 0.8;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  auto answer = bench::SampleAnswer(mu, t, rng);
  return Instance{std::move(mu), std::move(t),
                  answer.has_value() ? *answer : Str{}};
}

// Scaling in |Q| — the 4^{|Q|} regime (only reachable state sets are
// materialized, so growth is capped by the instance's actual subset
// diversity).
void BM_UniformSubset_Q(benchmark::State& state) {
  Instance inst = MakeInstance(64, static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    auto conf = query::ConfidenceUniformSubset(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["Q"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UniformSubset_Q)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

// Scaling in n — linear (Theorem 4.8's n factor).
void BM_UniformSubset_N(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)), 6, 13);
  for (auto _ : state) {
    auto conf = query::ConfidenceUniformSubset(inst.mu, inst.t, inst.answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UniformSubset_N)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The deterministic special case through the same code path, as the
// baseline the nondeterminism overhead is measured against.
void BM_UniformSubset_DeterministicBaseline(benchmark::State& state) {
  Rng rng(17);
  markov::MarkovSequence mu =
      workload::RandomMarkovSequence(3, 64, 3, rng);
  workload::RandomTransducerOptions opts;
  opts.num_states = static_cast<int>(state.range(0));
  opts.deterministic = true;
  opts.uniform_k = 1;
  opts.accept_prob = 1.0;
  transducer::Transducer t = workload::RandomTransducer(mu.nodes(), opts, rng);
  Str answer = *bench::SampleAnswer(mu, t, rng);
  for (auto _ : state) {
    auto conf = query::ConfidenceUniformSubset(mu, t, answer);
    benchmark::DoNotOptimize(conf);
  }
  state.counters["Q"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UniformSubset_DeterministicBaseline)->Arg(2)->Arg(8)->Arg(14);

}  // namespace
}  // namespace tms

int main(int argc, char** argv) {
  tms::bench::Session session("confidence_uniform_subset");
  tms::bench::PrintHeader(
      "E3: confidence, nondeterministic uniform emission (Theorem 4.8)",
      "O(n·k·|Σ|²·4^{|Q|}) via subset construction interleaved with the "
      "probability DP. Expected shape: super-polynomial growth in |Q| on "
      "dense nondeterministic machines, linear growth in n, and a flat "
      "deterministic baseline (singleton subsets).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
